//! Surrogate-guided adaptive exploration atop the [`Engine`].
//!
//! The paper's workflow simulates a *fixed* random sweep (T2) and only
//! then trains its surrogate (T3). The [`Explorer`] closes that loop:
//! it alternates small simulation batches with incremental surrogate
//! refits, and lets the surrogate's own uncertainty decide which design
//! points are worth the next batch of simulator time. The payoff is
//! sample efficiency — `tests/explorer_efficiency.rs` pins that a
//! budget of N/10 adaptive simulations reaches ≥0.95× the held-out R²
//! of the full N-point sweep.
//!
//! ## The acquire → simulate → retrain loop
//!
//! A candidate pool of `pool` design points is fixed up front: candidate
//! `i` is exactly the config a full sweep would sample at index `i`
//! (`space.sample_seeded(seed + i)`), so adaptive and fixed campaigns
//! draw from the same population. Each round:
//!
//! 1. **Acquire** — score every not-yet-simulated candidate and select
//!    the next batch (see *Acquisition* below).
//! 2. **Simulate** — run the batch through the engine as a plan with
//!    explicit config indices ([`RunPlan::with_config_indices`]),
//!    streaming rows into `explore_dataset.csv`.
//! 3. **Retrain** — [`RandomForest::partial_refit`] on all rows so far,
//!    then evaluate the refreshed surrogate on a held-out set
//!    (candidates `pool..pool + holdout`, simulated once up front) and
//!    append one point to the accuracy-vs-samples curve
//!    (`explore_curve.csv`, plus `explore_curve.json` on completion).
//!
//! ## Acquisition
//!
//! With predictions `p_i` and ensemble standard deviations `s_i` from
//! [`RandomForest::predict_variance`]:
//!
//! ```text
//! exploit_i = (max_j p_j − p_i) / (max_j p_j − min_j p_j)   // fast is good
//! explore_i = s_i / max_j s_j                               // uncertain is good
//! score_i   = (1 − ε) · exploit_i + ε · explore_i
//! ```
//!
//! with ε following the schedule `ε(r) = max(ε_min, ε₀ · d^r)`. Both
//! terms are defined as 0 when their denominator is 0 (all predictions
//! equal / all trees agree), so scores are always finite. The batch is
//! the top-k by `(score desc, candidate id asc)` — a total order, so
//! selection is invariant under any permutation of the candidate pool —
//! plus `⌊ε · batch / 2⌋` uniform-random picks from the remainder (the
//! schedule's exploration floor never goes fully greedy). In Pareto
//! mode the exploit term is replaced by non-dominated rank over
//! (predicted cycles, [`structure_cost`]), steering the batch toward
//! the predicted throughput/area frontier instead of raw speed.
//!
//! ## Determinism and resume
//!
//! Everything downstream of the seed is deterministic: engine rows are
//! byte-identical at any thread count, [`RandomForest::partial_refit`]
//! draws per-(round, tree) RNG streams, the acquisition RNG is a
//! counted xoshiro stream whose 256-bit state is persisted, and
//! selection breaks ties by candidate id. Exploration state rides in
//! the checkpoint's v2 `extra` section (`explore.*` keys: options
//! fingerprint, round, RNG state, selection cursor + history, per-round
//! model hashes, curve length), so a run paused mid-round via the
//! observer hook resumes to byte-identical artifacts — the resumed
//! forest is rebuilt by replaying the refit history against the
//! recorded model hashes, and a mismatch is an [`ArmdseError::Explore`]
//! rather than a silently different model. `tests/explorer_resume.rs`
//! pins the whole guarantee at 1 and 8 threads.

use crate::dataset::{DseDataset, Row};
use crate::engine::{
    fnv1a64, Checkpoint, CsvSink, Engine, Progress, RowSink, RunControl, RunPlan,
    DEFAULT_CHUNK_JOBS,
};
use crate::error::ArmdseError;
use crate::orchestrator::GenOptions;
use crate::space::ParamSpace;
use armdse_kernels::{App, WorkloadScale};
use armdse_mltree::{mae, r2, ForestParams, Matrix, RandomForest, Regressor};
use armdse_rng::{Rng, SeedableRng, Xoshiro256pp};
use armdse_simcore::{Idealized, Sampled};
use std::path::{Path, PathBuf};

/// Feature indices summed by [`structure_cost`]: the sized hardware
/// structures of the paper's design space (loop buffer, issue-queue and
/// register-file group, commit/frontend/LSQ widths, ROB, LQ, SQ) —
/// everything whose growth costs area and power, excluding latencies
/// and cache geometry.
const COST_FEATURES: std::ops::RangeInclusive<usize> = 2..=12;

/// A proxy for the hardware cost of a design point: the sum of its
/// sized-structure features (`COST_FEATURES`). Monotone in every
/// structure size, which is all Pareto ranking needs.
pub fn structure_cost(features: &[f64; 30]) -> f64 {
    features[COST_FEATURES].iter().sum()
}

/// Mix exploitation and exploration into one acquisition score per
/// candidate. `preds` are predicted cycle counts (lower is better),
/// `stds` the matching ensemble standard deviations, `eps ∈ [0, 1]` the
/// exploration weight. Degenerate denominators (all predictions equal,
/// all trees in agreement) contribute 0, so every score is finite.
pub fn acquisition_scores(preds: &[f64], stds: &[f64], eps: f64) -> Vec<f64> {
    assert_eq!(preds.len(), stds.len());
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &p in preds {
        lo = lo.min(p);
        hi = hi.max(p);
    }
    let span = hi - lo;
    let max_std = stds.iter().cloned().fold(0.0f64, f64::max);
    preds
        .iter()
        .zip(stds)
        .map(|(&p, &s)| {
            let exploit = if span > 0.0 { (hi - p) / span } else { 0.0 };
            let explore = if max_std > 0.0 { s / max_std } else { 0.0 };
            (1.0 - eps) * exploit + eps * explore
        })
        .collect()
}

/// Top-`k` candidate ids by `(score desc, id asc)`. The tiebreak makes
/// the order total, so the result is invariant under any permutation of
/// the `(id, score)` pairs (pinned by `tests/explorer_acquisition.rs`).
pub fn select_top_k(ids: &[u64], scores: &[f64], k: usize) -> Vec<u64> {
    assert_eq!(ids.len(), scores.len());
    let mut order: Vec<usize> = (0..ids.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("acquisition scores are finite")
            .then(ids[a].cmp(&ids[b]))
    });
    order.into_iter().take(k).map(|i| ids[i]).collect()
}

/// Non-dominated sorting rank (both objectives minimised): rank 0 is
/// the Pareto frontier, rank 1 the frontier after removing rank 0, and
/// so on. Quadratic per rank — pools are thousands of points, not
/// millions.
pub fn pareto_ranks(objectives: &[(f64, f64)]) -> Vec<usize> {
    let n = objectives.len();
    let mut rank = vec![usize::MAX; n];
    let mut assigned = 0usize;
    let mut current = 0usize;
    while assigned < n {
        let mut frontier = Vec::new();
        'outer: for i in 0..n {
            if rank[i] != usize::MAX {
                continue;
            }
            let (ai, bi) = objectives[i];
            for j in 0..n {
                if i == j || rank[j] != usize::MAX {
                    continue;
                }
                let (aj, bj) = objectives[j];
                // j dominates i: no worse in both, strictly better in one.
                if aj <= ai && bj <= bi && (aj < ai || bj < bi) {
                    continue 'outer;
                }
            }
            frontier.push(i);
        }
        assert!(!frontier.is_empty(), "non-dominated front cannot be empty");
        for i in frontier {
            rank[i] = current;
            assigned += 1;
        }
        current += 1;
    }
    rank
}

/// Exploration-weight schedule: `max(eps_min, eps0 · decay^round)`.
fn epsilon(opts: &ExploreOptions, round: usize) -> f64 {
    (opts.eps0 * opts.eps_decay.powi(round as i32)).max(opts.eps_min)
}

/// Adaptive-exploration configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreOptions {
    /// Application whose surrogate guides the search.
    pub app: App,
    /// Workload input scale.
    pub scale: WorkloadScale,
    /// Base seed: candidate `i` is `space.sample_seeded(seed + i)`.
    pub seed: u64,
    /// Candidate pool size (the "full sweep" population).
    pub pool: usize,
    /// Total simulation budget (candidates actually simulated).
    pub budget: usize,
    /// Simulations per acquire→simulate→retrain round.
    pub batch: usize,
    /// Held-out evaluation points (candidates `pool..pool + holdout`).
    pub holdout: usize,
    /// Engine worker threads (never changes the output).
    pub threads: usize,
    /// Two-objective mode: steer acquisition toward the predicted
    /// (cycles, structure-cost) Pareto frontier.
    pub pareto: bool,
    /// Features pinned to fixed values by name (the paper's Figs. 4/5
    /// pin Vector-Length): candidates vary only in the unpinned
    /// dimensions, which is also how a study makes a small budget
    /// saturate the surrogate.
    pub pins: Vec<(String, f64)>,
    /// Surrogate hyper-parameters.
    pub forest: ForestParams,
    /// Initial exploration weight ε₀.
    pub eps0: f64,
    /// Exploration floor ε_min.
    pub eps_min: f64,
    /// Per-round decay of ε.
    pub eps_decay: f64,
    /// Engine jobs per checkpointable chunk.
    pub chunk_jobs: usize,
    /// Low-fidelity screening of acquisition candidates: in each
    /// non-pareto round the greedy shortlist is over-selected by this
    /// factor, quickly scored with the sampled fidelity tier
    /// ([`armdse_simcore::Sampled`]), and only the best survivors are
    /// simulated at full fidelity. `0` or `1` disables screening (the
    /// default — byte-identical to the pre-screening explorer).
    pub screen_factor: usize,
    /// Sampled-tier measured-interval length used for screening.
    pub screen_interval_len: u64,
    /// Sampled-tier warmup prefix used for screening.
    pub screen_warmup: u64,
}

impl ExploreOptions {
    /// Defaults sized for a quick adaptive run on one app.
    pub fn for_app(app: App) -> ExploreOptions {
        ExploreOptions {
            app,
            scale: WorkloadScale::Tiny,
            seed: 42,
            pool: 240,
            budget: 48,
            batch: 12,
            holdout: 40,
            threads: 1,
            pareto: false,
            pins: Vec::new(),
            forest: ForestParams::default(),
            eps0: 0.5,
            eps_min: 0.05,
            eps_decay: 0.7,
            chunk_jobs: DEFAULT_CHUNK_JOBS,
            screen_factor: 0,
            screen_interval_len: armdse_simcore::DEFAULT_INTERVAL_LEN,
            screen_warmup: armdse_simcore::DEFAULT_WARMUP,
        }
    }

    fn validate(&self) -> Result<(), ArmdseError> {
        let bad = |m: &str| Err(ArmdseError::InvalidPlan(m.into()));
        if self.pool == 0 || self.budget == 0 || self.batch == 0 || self.holdout == 0 {
            return bad("pool, budget, batch, and holdout must all be > 0");
        }
        if self.budget > self.pool {
            return bad("budget exceeds the candidate pool");
        }
        if self.batch > self.budget {
            return bad("batch exceeds the budget");
        }
        if !(0.0..=1.0).contains(&self.eps0) || !(0.0..=1.0).contains(&self.eps_min) {
            return bad("eps0 and eps_min must be in [0, 1]");
        }
        if !(self.eps_decay > 0.0 && self.eps_decay <= 1.0) {
            return bad("eps_decay must be in (0, 1]");
        }
        if self.screen_factor >= 2 && self.screen_interval_len == 0 {
            return bad("screening requires screen_interval_len >= 1");
        }
        Ok(())
    }

    /// Rounds in the schedule (the last may be smaller than `batch`).
    pub fn rounds(&self) -> usize {
        self.budget.div_ceil(self.batch)
    }

    /// Batch size of round `r`.
    fn round_size(&self, r: usize) -> usize {
        self.batch.min(self.budget - r * self.batch)
    }
}

/// Progress snapshot handed to the explorer's observer after every
/// engine chunk. Returning `false` from the observer pauses the run at
/// that chunk boundary; `--resume` picks up from the checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreProgress {
    /// Current round (0-based).
    pub round: usize,
    /// Total rounds in the schedule.
    pub rounds: usize,
    /// Validated rows accumulated across all rounds so far.
    pub samples: usize,
    /// Total simulation budget.
    pub budget: usize,
    /// Jobs done within the current round's engine run.
    pub jobs_done: usize,
    /// Jobs in the current round.
    pub round_jobs: usize,
}

/// Per-run control for [`Explorer::run`].
#[derive(Default)]
pub struct ExploreControl<'a> {
    /// Continue from `explore.ckpt` in the output directory.
    pub resume: bool,
    /// Called after each engine chunk; `false` pauses the exploration.
    pub observer: Option<&'a mut dyn FnMut(&ExploreProgress) -> bool>,
}

/// One accuracy-vs-samples curve point (a row of `explore_curve.csv`).
#[derive(Debug, Clone, PartialEq)]
pub struct CurvePoint {
    /// Round index.
    pub round: usize,
    /// Rows accumulated when the round's refit ran.
    pub samples: usize,
    /// Exploration weight used by the round's selection.
    pub epsilon: f64,
    /// Held-out R² of the refreshed surrogate.
    pub r2: f64,
    /// Held-out mean absolute error (cycles).
    pub mae: f64,
    /// FNV-1a over the surrogate's held-out prediction bits — the
    /// replay-verification fingerprint of the model after this round.
    pub model_hash: u64,
}

/// Outcome of an exploration (possibly paused).
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreReport {
    /// Whether every round ran to completion.
    pub completed: bool,
    /// Rounds fully finished (simulated + refit + curve point).
    pub rounds_done: usize,
    /// Validated rows accumulated.
    pub samples: usize,
    /// All selected candidate indices, in selection order.
    pub selected: Vec<u64>,
    /// The accuracy-vs-samples curve so far.
    pub curve: Vec<CurvePoint>,
}

impl ExploreReport {
    /// Held-out R² after the last completed round.
    pub fn final_r2(&self) -> f64 {
        self.curve.last().map_or(f64::NAN, |p| p.r2)
    }

    /// Held-out MAE after the last completed round.
    pub fn final_mae(&self) -> f64 {
        self.curve.last().map_or(f64::NAN, |p| p.mae)
    }
}

/// Checkpoint `extra` keys owned by the explorer.
mod keys {
    pub const PLAN: &str = "explore.plan";
    pub const ROUND: &str = "explore.round";
    pub const RNG: &str = "explore.rng";
    pub const CURSOR: &str = "explore.cursor";
    pub const SELECTED: &str = "explore.selected";
    pub const HASHES: &str = "explore.hashes";
    pub const CURVE_ROWS: &str = "explore.curve_rows";
    pub const DONE: &str = "explore.done";
}

const CURVE_HEADER: &str = "round,samples,epsilon,r2,mae,model_hash";

/// The adaptive explorer: owns the loop, the artifacts, and the
/// checkpointed exploration state; borrows an [`Engine`] for the
/// simulations.
pub struct Explorer<'e> {
    engine: &'e Engine,
    space: ParamSpace,
    opts: ExploreOptions,
    out_dir: PathBuf,
}

/// Mutable loop state, shared between the fresh and resumed paths.
struct LoopState {
    rows: Vec<Row>,
    discarded: usize,
    selected: Vec<u64>,
    hashes: Vec<u64>,
    curve: Vec<CurvePoint>,
    rng: Xoshiro256pp,
    forest: RandomForest,
    round: usize,
    /// Whether the current round's batch is already selected and its
    /// engine checkpoint written (resume landed mid-round).
    mid_round: bool,
}

impl<'e> Explorer<'e> {
    /// Validate `opts` into an explorer writing artifacts under
    /// `out_dir` (which must already exist).
    pub fn new(
        engine: &'e Engine,
        space: &ParamSpace,
        opts: ExploreOptions,
        out_dir: &Path,
    ) -> Result<Explorer<'e>, ArmdseError> {
        opts.validate()?;
        Ok(Explorer {
            engine,
            space: space.clone(),
            opts,
            out_dir: out_dir.to_path_buf(),
        })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.out_dir.join(name)
    }

    /// Identity of this exploration: the space plus every option that
    /// affects results. Threads and chunk size are excluded for the
    /// same reason [`RunPlan::fingerprint`] excludes them — they must
    /// never change the artifacts, so either may differ between a run
    /// and its resume.
    fn options_fingerprint(&self) -> u64 {
        let o = &self.opts;
        let mut encoded = format!(
            "{:?}|{:?}|{:?}|{}|{}|{}|{}|{}|{}|{:?}|{:?}|{}|{}|{}",
            self.space,
            o.app,
            o.scale,
            o.seed,
            o.pool,
            o.budget,
            o.batch,
            o.holdout,
            o.pareto,
            o.pins,
            o.forest,
            o.eps0,
            o.eps_min,
            o.eps_decay
        );
        // Screening joins the identity only when enabled, so every
        // pre-screening checkpoint fingerprint is preserved verbatim.
        if o.screen_factor >= 2 {
            encoded.push_str(&format!(
                "|screen:{}:{}:{}",
                o.screen_factor, o.screen_interval_len, o.screen_warmup
            ));
        }
        fnv1a64(encoded.as_bytes())
    }

    /// Feature vectors of the candidate pool, by candidate id. Must
    /// sample exactly as the engine does so surrogate features match
    /// the simulated rows bit-for-bit.
    fn candidate_features(&self) -> Vec<[f64; 30]> {
        let pins = self.pins_ref();
        (0..self.opts.pool)
            .map(|i| {
                self.space
                    .sample_seeded_pinned(self.opts.seed + i as u64, &pins)
                    .to_features()
            })
            .collect()
    }

    fn pins_ref(&self) -> Vec<(&str, f64)> {
        self.opts
            .pins
            .iter()
            .map(|(n, v)| (n.as_str(), *v))
            .collect()
    }

    /// Simulate the held-out evaluation set (candidates `pool..pool +
    /// holdout`). Deterministic, so resume recomputes it instead of
    /// persisting it.
    fn simulate_holdout(&self) -> Result<(Matrix, Vec<f64>), ArmdseError> {
        let indices: Vec<u64> =
            (self.opts.pool as u64..(self.opts.pool + self.opts.holdout) as u64).collect();
        let plan = self.plan_for(&indices)?;
        let mut data = DseDataset::default();
        self.engine.run(&plan, &mut data)?;
        if data.rows.is_empty() {
            return Err(ArmdseError::Explore(
                "every held-out candidate failed validation".into(),
            ));
        }
        let mut x = Matrix::new(30);
        let mut y = Vec::with_capacity(data.rows.len());
        for r in &data.rows {
            x.push_row(&r.features);
            y.push(r.cycles as f64);
        }
        Ok((x, y))
    }

    fn plan_for(&self, indices: &[u64]) -> Result<RunPlan, ArmdseError> {
        let gen = GenOptions {
            configs: indices.len(),
            scale: self.opts.scale,
            seed: self.opts.seed,
            threads: self.opts.threads,
            apps: vec![self.opts.app],
        };
        RunPlan::pinned(&self.space, &gen, &self.pins_ref())?
            .with_config_indices(indices.to_vec())
            .map(|p| p.with_chunk_jobs(self.opts.chunk_jobs))
    }

    /// Select round `round`'s batch from the not-yet-simulated pool.
    /// Round 0 has no model, so it samples uniformly; later rounds take
    /// the acquisition top-k plus an ε-scheduled random remainder.
    fn select_round(
        &self,
        round: usize,
        state: &mut LoopState,
        features: &[[f64; 30]],
    ) -> Vec<u64> {
        let size = self.opts.round_size(round);
        let mut remaining: Vec<u64> = (0..self.opts.pool as u64)
            .filter(|i| !state.selected.contains(i))
            .collect();
        let mut picks = Vec::with_capacity(size);
        if round > 0 {
            let eps = epsilon(&self.opts, round);
            let preds: Vec<f64> = remaining
                .iter()
                .map(|&i| state.forest.predict_one(&features[i as usize]))
                .collect();
            let stds: Vec<f64> = remaining
                .iter()
                .map(|&i| state.forest.predict_variance(&features[i as usize]).sqrt())
                .collect();
            let scores = if self.opts.pareto {
                // Rank-based exploit: prefer points predicted to sit on
                // the (cycles, structure-cost) frontier.
                let objs: Vec<(f64, f64)> = remaining
                    .iter()
                    .zip(&preds)
                    .map(|(&i, &p)| (p, structure_cost(&features[i as usize])))
                    .collect();
                let ranks = pareto_ranks(&objs);
                let max_rank = ranks.iter().copied().max().unwrap_or(0).max(1) as f64;
                let max_std = stds.iter().cloned().fold(0.0f64, f64::max);
                ranks
                    .iter()
                    .zip(&stds)
                    .map(|(&rk, &s)| {
                        let exploit = 1.0 - rk as f64 / max_rank;
                        let explore = if max_std > 0.0 { s / max_std } else { 0.0 };
                        (1.0 - eps) * exploit + eps * explore
                    })
                    .collect()
            } else {
                acquisition_scores(&preds, &stds, eps)
            };
            let n_rand = (((eps * size as f64) / 2.0).floor() as usize).min(size.saturating_sub(1));
            let n_greedy = size - n_rand;
            // With screening enabled (and a single scalar objective —
            // the pareto ranking already encodes a different notion of
            // "best"), over-select the greedy shortlist by the screen
            // factor and let the sampled tier pick the survivors.
            let greedy = if self.opts.screen_factor >= 2 && !self.opts.pareto {
                let shortlist = select_top_k(
                    &remaining,
                    &scores,
                    n_greedy
                        .saturating_mul(self.opts.screen_factor)
                        .min(remaining.len()),
                );
                self.screen(&shortlist, n_greedy)
            } else {
                select_top_k(&remaining, &scores, n_greedy)
            };
            remaining.retain(|i| !greedy.contains(i));
            picks.extend(greedy);
        }
        while picks.len() < size {
            let j = state.rng.gen_range(0..remaining.len());
            picks.push(remaining.swap_remove(j));
        }
        picks
    }

    /// Rank `shortlist` with the sampled fidelity tier and keep the `k`
    /// candidates with the lowest estimated cycles (ties broken by id,
    /// so the result is deterministic). Runs sequentially on the shared
    /// workload cache — each estimate costs a warmup plus one interval,
    /// a small fraction of a full-fidelity simulation.
    fn screen(&self, shortlist: &[u64], k: usize) -> Vec<u64> {
        let backend = Sampled::with_params(
            Idealized,
            self.opts.screen_interval_len,
            self.opts.screen_warmup,
        );
        let pins = self.pins_ref();
        let mut ranked: Vec<(u64, u64)> = shortlist
            .iter()
            .map(|&i| {
                let cfg = self.space.sample_seeded_pinned(self.opts.seed + i, &pins);
                let stats =
                    self.engine
                        .simulate_config_on(&backend, self.opts.app, self.opts.scale, &cfg);
                (stats.cycles, i)
            })
            .collect();
        ranked.sort_unstable();
        ranked.truncate(k);
        ranked.into_iter().map(|(_, i)| i).collect()
    }

    fn checkpoint_extra(&self, state: &LoopState, done: bool) -> Vec<(String, String)> {
        let join_u64 = |v: &[u64]| v.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
        let rng_state = state.rng.state();
        let mut extra = vec![
            (
                keys::PLAN.into(),
                format!("{:016x}", self.options_fingerprint()),
            ),
            (keys::ROUND.into(), state.round.to_string()),
            (
                keys::RNG.into(),
                format!(
                    "{:016x},{:016x},{:016x},{:016x}",
                    rng_state[0], rng_state[1], rng_state[2], rng_state[3]
                ),
            ),
            (keys::CURSOR.into(), state.selected.len().to_string()),
            (keys::SELECTED.into(), join_u64(&state.selected)),
            (
                keys::HASHES.into(),
                state
                    .hashes
                    .iter()
                    .map(|h| format!("{h:016x}"))
                    .collect::<Vec<_>>()
                    .join(","),
            ),
            (keys::CURVE_ROWS.into(), state.curve.len().to_string()),
        ];
        if done {
            extra.push((keys::DONE.into(), "1".into()));
        }
        extra
    }

    /// Refit on everything simulated so far and append a curve point.
    fn refit_and_score(
        &self,
        state: &mut LoopState,
        holdout: &(Matrix, Vec<f64>),
    ) -> Result<(), ArmdseError> {
        if state.rows.is_empty() {
            return Err(ArmdseError::Explore(
                "round produced no validated rows to train on".into(),
            ));
        }
        let mut x = Matrix::new(30);
        let mut y = Vec::with_capacity(state.rows.len());
        for r in &state.rows {
            x.push_row(&r.features);
            y.push(r.cycles as f64);
        }
        state.forest.partial_refit(&x, &y, state.round as u64);
        if state.round + 1 == self.opts.rounds() {
            // Finalize: a second consecutive half-refresh on the same
            // data covers the remaining rotating window, so the final
            // surrogate is entirely trained on the complete adaptive
            // dataset (no stale trees in the reported model).
            state.forest.partial_refit(&x, &y, state.round as u64 + 1);
        }
        let preds = state.forest.predict(&holdout.0);
        let hash = model_hash(&preds);
        let point = CurvePoint {
            round: state.round,
            samples: state.rows.len(),
            epsilon: if state.round == 0 {
                1.0
            } else {
                epsilon(&self.opts, state.round)
            },
            r2: r2(&preds, &holdout.1),
            mae: mae(&preds, &holdout.1),
            model_hash: hash,
        };
        append_curve_row(&self.path("explore_curve.csv"), &point)?;
        state.hashes.push(hash);
        state.curve.push(point);
        Ok(())
    }

    /// Run (or resume) the exploration to completion or observer pause.
    pub fn run(&self, mut ctl: ExploreControl<'_>) -> Result<ExploreReport, ArmdseError> {
        let ckpt_path = self.path("explore.ckpt");
        let dataset_path = self.path("explore_dataset.csv");
        let curve_path = self.path("explore_curve.csv");

        let holdout = self.simulate_holdout()?;
        let features = self.candidate_features();

        let mut state = if ctl.resume && ckpt_path.exists() {
            let st = self.restore(&ckpt_path, &dataset_path, &curve_path, &holdout)?;
            if let Some(st) = st {
                st
            } else {
                // Checkpoint says the exploration already completed.
                return self.completed_report(&ckpt_path);
            }
        } else {
            // Fresh start: truncate every artifact.
            CsvSink::create(&dataset_path)?;
            std::fs::write(&curve_path, format!("{CURVE_HEADER}\n"))?;
            std::fs::remove_file(&ckpt_path).ok();
            LoopState {
                rows: Vec::new(),
                discarded: 0,
                selected: Vec::new(),
                hashes: Vec::new(),
                curve: Vec::new(),
                rng: Xoshiro256pp::seed_from_u64(self.opts.seed ^ ACQ_SEED_SALT),
                forest: RandomForest::warm_start(self.opts.forest, self.opts.seed),
                round: 0,
                mid_round: false,
            }
        };

        let rounds = self.opts.rounds();
        while state.round < rounds {
            let size = self.opts.round_size(state.round);
            let round_sel: Vec<u64> = if state.mid_round {
                state.mid_round = false;
                state.selected[state.selected.len() - size..].to_vec()
            } else {
                let picks = self.select_round(state.round, &mut state, &features);
                state.selected.extend(&picks);
                // Persist position *before* the round's engine run so an
                // interruption anywhere inside it resumes this round with
                // this exact selection and post-selection RNG state.
                Checkpoint {
                    fingerprint: self.plan_for(&picks)?.fingerprint(),
                    jobs_done: 0,
                    rows: state.rows.len(),
                    discarded: state.discarded,
                    extra: self.checkpoint_extra(&state, false),
                }
                .save(&ckpt_path)?;
                picks
            };

            let plan = self.plan_for(&round_sel)?;
            let extra = self.checkpoint_extra(&state, false);
            let mut sink = TeeSink {
                csv: CsvSink::append(&dataset_path)?,
                rows: &mut state.rows,
            };
            let (round, budget) = (state.round, self.opts.budget);
            let mut paused = false;
            let summary = {
                let mut engine_obs = |p: &Progress| -> bool {
                    let ep = ExploreProgress {
                        round,
                        rounds,
                        samples: p.rows,
                        budget,
                        jobs_done: p.jobs_done,
                        round_jobs: p.total_jobs,
                    };
                    let go = match ctl.observer.as_deref_mut() {
                        Some(f) => f(&ep),
                        None => true,
                    };
                    paused = !go;
                    go
                };
                self.engine.run_controlled(
                    &plan,
                    &mut sink,
                    RunControl {
                        checkpoint: Some(&ckpt_path),
                        resume: true,
                        observer: Some(&mut engine_obs),
                        metrics: None,
                        checkpoint_extra: Some(&extra),
                        ..RunControl::default()
                    },
                )?
            };
            state.discarded += summary.discarded;
            if !summary.completed || paused {
                return Ok(ExploreReport {
                    completed: false,
                    rounds_done: state.curve.len(),
                    samples: state.rows.len(),
                    selected: state.selected.clone(),
                    curve: state.curve.clone(),
                });
            }

            self.refit_and_score(&mut state, &holdout)?;
            state.round += 1;
        }

        // Final checkpoint marks completion (resume becomes a no-op),
        // then the completion-only artifacts.
        Checkpoint {
            fingerprint: self.options_fingerprint(),
            jobs_done: 0,
            rows: state.rows.len(),
            discarded: state.discarded,
            extra: self.checkpoint_extra(&state, true),
        }
        .save(&ckpt_path)?;
        self.write_curve_json(&state)?;
        if self.opts.pareto {
            self.write_pareto_csv(&state, &features)?;
        }
        Ok(ExploreReport {
            completed: true,
            rounds_done: state.curve.len(),
            samples: state.rows.len(),
            selected: state.selected,
            curve: state.curve,
        })
    }

    /// Rebuild loop state from the checkpoint: reload rows, truncate
    /// the curve to the checkpointed length, replay the refit history
    /// against the recorded model hashes, and restore the RNG. Returns
    /// `None` when the checkpoint marks a completed exploration.
    fn restore(
        &self,
        ckpt_path: &Path,
        dataset_path: &Path,
        curve_path: &Path,
        holdout: &(Matrix, Vec<f64>),
    ) -> Result<Option<LoopState>, ArmdseError> {
        let ckpt = Checkpoint::load(ckpt_path)?;
        let get = |key: &str| {
            ckpt.extra_get(key).ok_or_else(|| {
                ArmdseError::Explore(format!("checkpoint is missing exploration key {key}"))
            })
        };
        let plan_fp = u64::from_str_radix(get(keys::PLAN)?, 16)
            .map_err(|_| ArmdseError::Explore("unparsable explore.plan".into()))?;
        if plan_fp != self.options_fingerprint() {
            return Err(ArmdseError::Explore(format!(
                "checkpoint belongs to a different exploration \
                 ({plan_fp:016x} != {:016x}) — refusing to resume",
                self.options_fingerprint()
            )));
        }
        let round: usize = get(keys::ROUND)?
            .parse()
            .map_err(|_| ArmdseError::Explore("unparsable explore.round".into()))?;
        let cursor: usize = get(keys::CURSOR)?
            .parse()
            .map_err(|_| ArmdseError::Explore("unparsable explore.cursor".into()))?;
        let selected = parse_u64_list(get(keys::SELECTED)?, 10)?;
        if selected.len() != cursor {
            return Err(ArmdseError::Explore(format!(
                "selection cursor {cursor} disagrees with {} recorded picks",
                selected.len()
            )));
        }
        let hashes = parse_u64_list(get(keys::HASHES)?, 16)?;
        let curve_rows: usize = get(keys::CURVE_ROWS)?
            .parse()
            .map_err(|_| ArmdseError::Explore("unparsable explore.curve_rows".into()))?;
        let mut rng_words = [0u64; 4];
        let rng_text = get(keys::RNG)?;
        let parts: Vec<&str> = rng_text.split(',').collect();
        if parts.len() != 4 {
            return Err(ArmdseError::Explore("unparsable explore.rng".into()));
        }
        for (w, p) in rng_words.iter_mut().zip(&parts) {
            *w = u64::from_str_radix(p, 16)
                .map_err(|_| ArmdseError::Explore("unparsable explore.rng".into()))?;
        }

        // Reload the accumulated rows; tolerate a dataset flushed one
        // chunk past the checkpoint (sink durability runs ahead of the
        // checkpoint write, never behind).
        let mut data = DseDataset::load_csv(dataset_path).map_err(ArmdseError::Io)?;
        if data.rows.len() < ckpt.rows {
            return Err(ArmdseError::Explore(format!(
                "dataset has {} rows but the checkpoint recorded {}",
                data.rows.len(),
                ckpt.rows
            )));
        }
        if data.rows.len() > ckpt.rows {
            data.rows.truncate(ckpt.rows);
            data.save_csv(dataset_path)?;
        }

        // The curve is authoritative up to `curve_rows`; drop anything
        // written after the checkpoint.
        let curve = truncate_and_parse_curve(curve_path, curve_rows)?;
        if curve.len() != hashes.len() {
            return Err(ArmdseError::Explore(format!(
                "{} curve points but {} model hashes",
                curve.len(),
                hashes.len()
            )));
        }

        // Replay the refit history and verify each round's model hash.
        let mut forest = RandomForest::warm_start(self.opts.forest, self.opts.seed);
        for (q, point) in curve.iter().enumerate() {
            if point.samples > data.rows.len() {
                return Err(ArmdseError::Explore(format!(
                    "curve round {q} trained on {} rows but only {} are on disk",
                    point.samples,
                    data.rows.len()
                )));
            }
            let mut x = Matrix::new(30);
            let mut y = Vec::with_capacity(point.samples);
            for r in &data.rows[..point.samples] {
                x.push_row(&r.features);
                y.push(r.cycles as f64);
            }
            forest.partial_refit(&x, &y, q as u64);
            if q + 1 == self.opts.rounds() {
                // Mirror the finalizing refresh of the last round.
                forest.partial_refit(&x, &y, q as u64 + 1);
            }
            let replayed = model_hash(&forest.predict(&holdout.0));
            if replayed != point.model_hash {
                return Err(ArmdseError::Explore(format!(
                    "replayed model hash {replayed:016x} != recorded {:016x} at round {q} — \
                     artifacts do not match this exploration",
                    point.model_hash
                )));
            }
        }

        if ckpt.extra_get(keys::DONE).is_some() {
            return Ok(None);
        }
        Ok(Some(LoopState {
            rows: data.rows,
            discarded: ckpt.discarded,
            selected,
            hashes,
            curve,
            rng: Xoshiro256pp::from_state(rng_words),
            forest,
            round,
            mid_round: true,
        }))
    }

    /// Report for a checkpoint that already marks completion: parse the
    /// artifacts instead of re-running anything.
    fn completed_report(&self, ckpt_path: &Path) -> Result<ExploreReport, ArmdseError> {
        let ckpt = Checkpoint::load(ckpt_path)?;
        let selected = parse_u64_list(ckpt.extra_get(keys::SELECTED).unwrap_or(""), 10)?;
        let curve_rows: usize = ckpt
            .extra_get(keys::CURVE_ROWS)
            .unwrap_or("0")
            .parse()
            .map_err(|_| ArmdseError::Explore("unparsable explore.curve_rows".into()))?;
        let curve = truncate_and_parse_curve(&self.path("explore_curve.csv"), curve_rows)?;
        Ok(ExploreReport {
            completed: true,
            rounds_done: curve.len(),
            samples: ckpt.rows,
            selected,
            curve,
        })
    }

    fn write_curve_json(&self, state: &LoopState) -> Result<(), ArmdseError> {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"app\": \"{}\",\n", self.opts.app.name()));
        s.push_str(&format!("  \"scale\": \"{:?}\",\n", self.opts.scale));
        s.push_str(&format!("  \"seed\": {},\n", self.opts.seed));
        s.push_str(&format!("  \"pool\": {},\n", self.opts.pool));
        s.push_str(&format!("  \"budget\": {},\n", self.opts.budget));
        s.push_str(&format!("  \"batch\": {},\n", self.opts.batch));
        s.push_str(&format!("  \"holdout\": {},\n", self.opts.holdout));
        s.push_str(&format!("  \"pareto\": {},\n", self.opts.pareto));
        s.push_str("  \"points\": [\n");
        for (i, p) in state.curve.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"round\": {}, \"samples\": {}, \"epsilon\": {}, \
                 \"r2\": {}, \"mae\": {}, \"model_hash\": \"{:016x}\"}}{}\n",
                p.round,
                p.samples,
                p.epsilon,
                p.r2,
                p.mae,
                p.model_hash,
                if i + 1 < state.curve.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        std::fs::write(self.path("explore_curve.json"), s).map_err(ArmdseError::from)
    }

    /// Pareto-mode completion artifact: the whole pool scored by the
    /// final surrogate, with non-dominated rank over (predicted cycles,
    /// structure cost) and a flag for the candidates actually simulated.
    fn write_pareto_csv(
        &self,
        state: &LoopState,
        features: &[[f64; 30]],
    ) -> Result<(), ArmdseError> {
        let objs: Vec<(f64, f64)> = features
            .iter()
            .map(|f| (state.forest.predict_one(f), structure_cost(f)))
            .collect();
        let ranks = pareto_ranks(&objs);
        let mut s = String::from("candidate,pred_cycles,structure_cost,rank,selected\n");
        for (i, ((pred, cost), rank)) in objs.iter().zip(&ranks).enumerate() {
            s.push_str(&format!(
                "{i},{pred:.3},{cost},{rank},{}\n",
                u8::from(state.selected.contains(&(i as u64)))
            ));
        }
        std::fs::write(self.path("explore_pareto.csv"), s).map_err(ArmdseError::from)
    }
}

/// FNV-1a over the bit patterns of the surrogate's held-out
/// predictions: cheap, deterministic, and sensitive to any change in
/// the fitted ensemble.
fn model_hash(preds: &[f64]) -> u64 {
    let mut bytes = Vec::with_capacity(preds.len() * 8);
    for p in preds {
        bytes.extend_from_slice(&p.to_bits().to_be_bytes());
    }
    fnv1a64(&bytes)
}

/// Dataset sink that both streams to the CSV artifact and mirrors rows
/// in memory for the surrogate refits.
struct TeeSink<'a> {
    csv: CsvSink,
    rows: &'a mut Vec<Row>,
}

impl RowSink for TeeSink<'_> {
    fn row(&mut self, row: &Row) -> Result<(), ArmdseError> {
        self.rows.push(row.clone());
        self.csv.row(row)
    }

    fn discarded(&mut self, d: &crate::dataset::DiscardedRun) -> Result<(), ArmdseError> {
        self.csv.discarded(d)
    }

    fn chunk_end(&mut self) -> Result<(), ArmdseError> {
        self.csv.chunk_end()
    }
}

fn append_curve_row(path: &Path, p: &CurvePoint) -> Result<(), ArmdseError> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new().append(true).open(path)?;
    // Full-precision Display: f64 round-trips exactly, so a resumed
    // run's parsed curve is bit-identical to the fresh run's floats.
    writeln!(
        f,
        "{},{},{},{},{},{:016x}",
        p.round, p.samples, p.epsilon, p.r2, p.mae, p.model_hash
    )?;
    f.sync_data().map_err(ArmdseError::from)
}

/// Truncate the curve CSV to `keep` data rows (the checkpoint is
/// authoritative; a crash can leave one extra row) and parse what
/// remains.
fn truncate_and_parse_curve(path: &Path, keep: usize) -> Result<Vec<CurvePoint>, ArmdseError> {
    let body = std::fs::read_to_string(path)?;
    let mut lines = body.lines();
    if lines.next() != Some(CURVE_HEADER) {
        return Err(ArmdseError::Explore(format!(
            "{}: malformed curve header",
            path.display()
        )));
    }
    let data: Vec<&str> = lines.collect();
    if data.len() < keep {
        return Err(ArmdseError::Explore(format!(
            "{}: has {} rows but the checkpoint recorded {keep}",
            path.display(),
            data.len()
        )));
    }
    if data.len() > keep {
        let mut s = String::from(CURVE_HEADER);
        s.push('\n');
        for line in &data[..keep] {
            s.push_str(line);
            s.push('\n');
        }
        std::fs::write(path, s)?;
    }
    let mut curve = Vec::with_capacity(keep);
    for line in &data[..keep] {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 6 {
            return Err(ArmdseError::Explore(format!(
                "{}: malformed curve row '{line}'",
                path.display()
            )));
        }
        let bad = |what: &str| ArmdseError::Explore(format!("unparsable curve {what}: '{line}'"));
        curve.push(CurvePoint {
            round: f[0].parse().map_err(|_| bad("round"))?,
            samples: f[1].parse().map_err(|_| bad("samples"))?,
            epsilon: f[2].parse().map_err(|_| bad("epsilon"))?,
            r2: f[3].parse().map_err(|_| bad("r2"))?,
            mae: f[4].parse().map_err(|_| bad("mae"))?,
            model_hash: u64::from_str_radix(f[5], 16).map_err(|_| bad("model_hash"))?,
        });
    }
    Ok(curve)
}

fn parse_u64_list(s: &str, radix: u32) -> Result<Vec<u64>, ArmdseError> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|p| {
            u64::from_str_radix(p, radix)
                .map_err(|_| ArmdseError::Explore(format!("unparsable list entry '{p}'")))
        })
        .collect()
}

/// Salt decorrelating the acquisition RNG stream from the sampling
/// seed (candidate `i` already consumes `seed + i`).
const ACQ_SEED_SALT: u64 = 0xE0E0_5EED_ACC1_0A17;
