//! The scheduler layer: the campaign run loop, extracted and shared.
//!
//! PR 9 split the old monolithic `Engine::run_controlled` into three
//! layers (DESIGN.md §14). This module is the middle one: it owns the
//! mechanics of *executing* a validated [`RunPlan`] — chunk
//! partitioning, worker-thread fan-out, checkpoint cadence, the
//! observer/pause hook — and a [`JobScheduler`] that drives many
//! [`Job`]s through that loop from a priority queue.
//!
//! * `run_span` executes one chunk of jobs across worker threads and
//!   returns results sorted by job index (the determinism keystone:
//!   threads race on an atomic counter, order is restored before the
//!   sink sees anything).
//! * `run_job_loop` is the full resumable campaign loop —
//!   [`Engine::run_controlled`] is now a thin wrapper over it, so every
//!   existing consumer (Explorer, repro, analysis harnesses) runs
//!   through the exact same code path the job server does.
//! * [`JobScheduler`] owns runner threads and a priority queue of
//!   submitted jobs ([`crate::jobstore`]), with cooperative pause and
//!   cancel implemented via the observer hook the engine already had.
//!
//! ## Queue discipline
//!
//! The queue pops the highest `priority` first and breaks ties by job
//! id ascending (submission order). Both halves are deterministic: the
//! same submissions always start in the same order
//! (`tests/server_jobs.rs` pins this). Cancelled or paused entries are
//! removed lazily — a popped id whose job is no longer `Queued` is
//! simply skipped, so stale heap entries are harmless.
//!
//! ## Pause / cancel semantics
//!
//! Pause and cancel are cooperative and chunk-granular. A `Running`
//! job's flags are checked by the run loop's observer at every chunk
//! boundary — *after* the sink flushed and the checkpoint was saved —
//! so a paused or cancelled job always leaves a loadable checkpoint
//! and a CSV that is byte-identical to a prefix of the uninterrupted
//! run. A `Queued` job pauses or cancels immediately (it never ran).

use crate::dataset::{DiscardedRun, Row};
use crate::engine::{
    Checkpoint, CsvSink, Engine, Progress, ReuseMode, RowSink, RunControl, RunPlan, RunSummary,
};
use crate::error::ArmdseError;
use crate::jobstore::{Job, JobId, JobOpError, JobSpec, JobState, JobStatus, JobStore};
use crate::metrics::{MetricsCsvSink, MetricsRow, MetricsSink};
use armdse_simcore::{Fidelity, Topology};
use std::collections::BinaryHeap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One job's chunk result: index, dataset outcome, optional metrics
/// rows (aggregate first, then per-core detail on multicore backends).
pub(crate) type ChunkResult = (usize, Result<Row, DiscardedRun>, Option<Vec<MetricsRow>>);

/// The checkpoint v2 extra keys recording a non-default fidelity tier.
/// [`Fidelity::Full`] maps to no keys at all so default campaigns keep
/// the v1 on-disk checkpoint format byte-for-byte.
pub(crate) fn fidelity_extra(f: Fidelity) -> Vec<(String, String)> {
    let tag = ("reuse.fidelity".into(), f.tag().into());
    match f {
        Fidelity::Full => Vec::new(),
        Fidelity::Memoized { interval_len } => {
            vec![tag, ("reuse.interval_len".into(), interval_len.to_string())]
        }
        Fidelity::Sampled {
            interval_len,
            warmup,
        } => vec![
            tag,
            ("reuse.interval_len".into(), interval_len.to_string()),
            ("reuse.warmup".into(), warmup.to_string()),
        ],
    }
}

/// The checkpoint v2 extra keys recording a non-default machine
/// topology. The single-core default maps to no keys at all, so every
/// pre-multicore campaign keeps its on-disk checkpoint bytes.
pub(crate) fn topology_extra(t: Topology) -> Vec<(String, String)> {
    if t == Topology::default() {
        Vec::new()
    } else {
        vec![
            ("mc.cores".into(), t.cores.to_string()),
            ("mc.banks".into(), t.banks.to_string()),
        ]
    }
}

/// Execute jobs `start..end` of `plan` across its worker threads on
/// `engine`, returning results sorted by job index. Worker shard `t`
/// optionally counts the jobs it executed into `shards[t]`
/// (observability only — shard assignment is racy by design and never
/// affects the sorted output).
pub(crate) fn run_span(
    engine: &Engine,
    plan: &RunPlan,
    start: usize,
    end: usize,
    with_metrics: bool,
    shards: Option<&[AtomicUsize]>,
) -> Vec<ChunkResult> {
    let n = end - start;
    let threads = plan.threads().clamp(1, n);
    let pins: Vec<(&str, f64)> = plan
        .pins()
        .iter()
        .map(|(name, v)| (name.as_str(), *v))
        .collect();
    let counter = AtomicUsize::new(start);
    let results: Mutex<Vec<ChunkResult>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|s| {
        for t in 0..threads {
            let (pins, counter, results) = (&pins, &counter, &results);
            s.spawn(move || {
                let mut local: Vec<ChunkResult> = Vec::new();
                loop {
                    let job = counter.fetch_add(1, Ordering::Relaxed);
                    if job >= end {
                        break;
                    }
                    let cfg_idx = job / plan.apps().len();
                    let app = plan.apps()[job % plan.apps().len()];
                    let cfg = plan
                        .space()
                        .sample_seeded_pinned(plan.seed() + plan.config_offset(cfg_idx), pins);
                    let (result, metrics_rows) = if with_metrics {
                        let (r, m) = engine.run_job_metrics(app, job, cfg_idx, plan.scale(), &cfg);
                        (r, Some(m))
                    } else {
                        (engine.run_job(app, cfg_idx, plan.scale(), &cfg), None)
                    };
                    local.push((job, result, metrics_rows));
                }
                if let Some(counts) = shards {
                    counts[t].fetch_add(local.len(), Ordering::Relaxed);
                }
                results
                    .lock()
                    .expect("worker poisoned results")
                    .append(&mut local);
            });
        }
    });

    let mut collected = results.into_inner().expect("worker poisoned results");
    collected.sort_unstable_by_key(|(job, ..)| *job);
    collected
}

/// The resumable campaign loop: chunk partitioning, checkpoint cadence,
/// fidelity-tier guard, observer/pause hook. This *is* the former body
/// of `Engine::run_controlled`; the engine method now delegates here
/// with `shards: None`, and the [`JobScheduler`] runner calls it with
/// per-shard counters and a flag-checking observer.
pub(crate) fn run_job_loop(
    engine: &Engine,
    plan: &RunPlan,
    sink: &mut dyn RowSink,
    mut ctl: RunControl<'_>,
    shards: Option<&[AtomicUsize]>,
) -> Result<RunSummary, ArmdseError> {
    let total_jobs = plan.jobs();
    let fingerprint = plan.fingerprint();
    // Fidelity and machine-topology keys ride along in the checkpoint's
    // v2 extra section so a resume cannot silently splice rows produced
    // at a different fidelity — or on a different machine shape — into
    // one dataset. Full fidelity on the single-core default writes no
    // keys, keeping the default on-disk format byte-identical.
    let mut reuse_extra = fidelity_extra(engine.backend().fidelity());
    reuse_extra.extend(topology_extra(engine.backend().topology()));
    let mut done = 0usize;
    let mut resumed_from = 0usize;
    let (mut prior_rows, mut prior_discarded) = (0usize, 0usize);
    if ctl.resume {
        let path = ctl.checkpoint.ok_or_else(|| {
            ArmdseError::InvalidPlan("resume requested without a checkpoint path".into())
        })?;
        if path.exists() {
            let c = Checkpoint::load(path)?;
            if c.fingerprint != fingerprint {
                return Err(ArmdseError::Checkpoint(format!(
                    "{}: fingerprint {:016x} does not match plan {:016x} — \
                     refusing to resume a different campaign",
                    path.display(),
                    c.fingerprint,
                    fingerprint
                )));
            }
            if c.jobs_done > total_jobs {
                return Err(ArmdseError::Checkpoint(format!(
                    "{}: jobs_done {} exceeds plan total {total_jobs}",
                    path.display(),
                    c.jobs_done
                )));
            }
            for key in [
                "reuse.fidelity",
                "reuse.interval_len",
                "reuse.warmup",
                "mc.cores",
                "mc.banks",
            ] {
                let want = reuse_extra
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.as_str());
                if c.extra_get(key) != want {
                    return Err(ArmdseError::Checkpoint(format!(
                        "{}: {key} {:?} does not match this engine's {:?} — \
                         refusing to mix fidelity tiers or machine shapes \
                         in one dataset",
                        path.display(),
                        c.extra_get(key),
                        want
                    )));
                }
            }
            done = c.jobs_done;
            resumed_from = done;
            prior_rows = c.rows;
            prior_discarded = c.discarded;
        }
    }
    if ctl.reuse == ReuseMode::ColdStart {
        engine.backend().clear_reuse_cache();
    }

    let with_metrics = ctl.metrics.is_some();
    let (mut rows, mut discarded) = (0usize, 0usize);
    while done < total_jobs {
        let end = (done + plan.chunk_jobs()).min(total_jobs);
        for (_, result, metrics_rows) in run_span(engine, plan, done, end, with_metrics, shards) {
            match result {
                Ok(row) => {
                    sink.row(&row)?;
                    rows += 1;
                }
                Err(d) => {
                    sink.discarded(&d)?;
                    discarded += 1;
                }
            }
            if let (Some(rows), Some(msink)) = (metrics_rows, ctl.metrics.as_deref_mut()) {
                for m in &rows {
                    msink.metrics(m)?;
                }
            }
        }
        done = end;
        sink.chunk_end()?;
        if let Some(msink) = ctl.metrics.as_deref_mut() {
            msink.chunk_end()?;
        }
        if let Some(path) = ctl.checkpoint {
            let mut extra = reuse_extra.clone();
            extra.extend_from_slice(ctl.checkpoint_extra.unwrap_or(&[]));
            Checkpoint {
                fingerprint,
                jobs_done: done,
                rows: prior_rows + rows,
                discarded: prior_discarded + discarded,
                extra,
            }
            .save(path)?;
        }
        let progress = Progress {
            jobs_done: done,
            total_jobs,
            rows: prior_rows + rows,
            discarded: prior_discarded + discarded,
            reuse: engine.backend().reuse_stats(),
        };
        if let Some(observer) = ctl.observer.as_deref_mut() {
            if !observer(&progress) && done < total_jobs {
                return Ok(RunSummary {
                    jobs: total_jobs,
                    jobs_done: done,
                    rows,
                    discarded,
                    resumed_from,
                    completed: false,
                });
            }
        }
    }
    Ok(RunSummary {
        jobs: total_jobs,
        jobs_done: done,
        rows,
        discarded,
        resumed_from,
        completed: true,
    })
}

/// Max-heap key: highest priority first, job-id ascending on ties.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueueKey {
    priority: i64,
    id: JobId,
}

impl Ord for QueueKey {
    fn cmp(&self, other: &QueueKey) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.id.cmp(&self.id))
    }
}

impl PartialOrd for QueueKey {
    fn partial_cmp(&self, other: &QueueKey) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Shared {
    store: Arc<JobStore>,
    queue: Mutex<BinaryHeap<QueueKey>>,
    cv: Condvar,
    shutdown: AtomicBool,
}

/// Runner-thread pool plus priority queue over a [`JobStore`]: the
/// execution half of the DSE service. Submitted jobs queue by
/// `(priority desc, id asc)`; each runner pops one, claims it
/// (`Queued → Running`), and drives `run_job_loop` with the job's
/// private engine and per-job sinks. [`JobScheduler::shutdown`]
/// pauses running jobs at their next chunk boundary and joins every
/// runner, so process exit always leaves resumable state on disk.
pub struct JobScheduler {
    shared: Arc<Shared>,
    runners: Mutex<Vec<JoinHandle<()>>>,
}

impl JobScheduler {
    /// A scheduler over `store` with `runners` runner threads (0 is
    /// valid: jobs queue until [`JobScheduler::add_runners`]).
    pub fn new(store: Arc<JobStore>, runners: usize) -> JobScheduler {
        let sched = JobScheduler {
            shared: Arc::new(Shared {
                store,
                queue: Mutex::new(BinaryHeap::new()),
                cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
            }),
            runners: Mutex::new(Vec::new()),
        };
        sched.add_runners(runners);
        sched
    }

    /// Convenience: open (or create) the store at `dir` and schedule
    /// over it.
    pub fn open(dir: &Path, runners: usize) -> Result<JobScheduler, ArmdseError> {
        Ok(JobScheduler::new(Arc::new(JobStore::open(dir)?), runners))
    }

    /// The underlying job store.
    pub fn store(&self) -> &Arc<JobStore> {
        &self.shared.store
    }

    /// Spawn `n` additional runner threads.
    pub fn add_runners(&self, n: usize) {
        let mut runners = self.runners.lock().expect("runner list poisoned");
        for _ in 0..n {
            let shared = Arc::clone(&self.shared);
            let idx = runners.len();
            runners.push(
                std::thread::Builder::new()
                    .name(format!("armdse-runner-{idx}"))
                    .spawn(move || runner_loop(&shared))
                    .expect("spawn runner thread"),
            );
        }
    }

    /// Validate and persist `spec` as a new job and enqueue it.
    pub fn submit(&self, spec: JobSpec) -> Result<Arc<Job>, ArmdseError> {
        let job = self.shared.store.create(spec)?;
        self.enqueue(job.spec().priority, job.id());
        Ok(job)
    }

    fn enqueue(&self, priority: i64, id: JobId) {
        self.shared
            .queue
            .lock()
            .expect("queue poisoned")
            .push(QueueKey { priority, id });
        self.shared.cv.notify_one();
    }

    /// Request a pause. `Queued` jobs pause immediately; `Running` jobs
    /// stop at the next chunk boundary (their checkpoint already
    /// saved). Returns the status at the time of the request.
    pub fn pause(&self, id: JobId) -> Result<JobStatus, JobOpError> {
        let job = self.shared.store.get(id).ok_or(JobOpError::Unknown(id))?;
        let mut inner = job.inner.lock().expect("job lock poisoned");
        match inner.state {
            JobState::Queued => {
                inner.state = JobState::Paused;
                inner.version += 1;
                job.cv.notify_all();
            }
            JobState::Running => {
                job.pause_flag.store(true, Ordering::Relaxed);
            }
            state => {
                return Err(JobOpError::BadTransition {
                    id,
                    state,
                    op: "pause",
                })
            }
        }
        Ok(job.status_locked(&inner))
    }

    /// Re-queue a `Paused` job (resume is byte-identical: the run loop
    /// continues from the job's checkpoint). Also rescinds a pause
    /// requested on a still-`Running` job.
    pub fn resume(&self, id: JobId) -> Result<JobStatus, JobOpError> {
        let job = self.shared.store.get(id).ok_or(JobOpError::Unknown(id))?;
        let mut inner = job.inner.lock().expect("job lock poisoned");
        match inner.state {
            JobState::Paused => {
                job.pause_flag.store(false, Ordering::Relaxed);
                inner.state = JobState::Queued;
                inner.version += 1;
                job.cv.notify_all();
                let status = job.status_locked(&inner);
                drop(inner);
                self.enqueue(job.spec().priority, id);
                return Ok(status);
            }
            JobState::Running if job.pause_flag.load(Ordering::Relaxed) => {
                job.pause_flag.store(false, Ordering::Relaxed);
            }
            state => {
                return Err(JobOpError::BadTransition {
                    id,
                    state,
                    op: "resume",
                })
            }
        }
        Ok(job.status_locked(&inner))
    }

    /// Request cancellation. `Queued`/`Paused` jobs cancel immediately;
    /// `Running` jobs stop at the next chunk boundary. Either way the
    /// job's last checkpoint stays on disk and loadable.
    pub fn cancel(&self, id: JobId) -> Result<JobStatus, JobOpError> {
        let job = self.shared.store.get(id).ok_or(JobOpError::Unknown(id))?;
        let mut inner = job.inner.lock().expect("job lock poisoned");
        match inner.state {
            JobState::Queued | JobState::Paused => {
                inner.state = JobState::Cancelled;
                inner.finished_seq = Some(self.shared.store.next_seq());
                inner.version += 1;
                job.persist_terminal(JobState::Cancelled, None);
                job.cv.notify_all();
            }
            JobState::Running => {
                job.cancel_flag.store(true, Ordering::Relaxed);
                job.pause_flag.store(true, Ordering::Relaxed);
            }
            state => {
                return Err(JobOpError::BadTransition {
                    id,
                    state,
                    op: "cancel",
                })
            }
        }
        Ok(job.status_locked(&inner))
    }

    /// Stop accepting work, pause running jobs at their next chunk
    /// boundary, and join every runner thread. Idempotent. Queued jobs
    /// stay on disk and reopen as `Paused` (resumable) next start.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for job in self.shared.store.list() {
            let inner = job.inner.lock().expect("job lock poisoned");
            if inner.state == JobState::Running {
                job.pause_flag.store(true, Ordering::Relaxed);
            }
        }
        self.shared.cv.notify_all();
        let handles: Vec<JoinHandle<()>> = self
            .runners
            .lock()
            .expect("runner list poisoned")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for JobScheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn runner_loop(shared: &Shared) {
    loop {
        let key = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(key) = queue.pop() {
                    break key;
                }
                queue = shared.cv.wait(queue).expect("queue poisoned");
            }
        };
        let Some(job) = shared.store.get(key.id) else {
            continue;
        };
        // Claim: stale heap entries (paused/cancelled while queued, or
        // duplicate keys from pause+resume cycles) are skipped here.
        {
            let mut inner = job.inner.lock().expect("job lock poisoned");
            if inner.state != JobState::Queued {
                continue;
            }
            inner.state = JobState::Running;
            if inner.started_seq.is_none() {
                inner.started_seq = Some(shared.store.next_seq());
            }
            inner.shards = vec![0; job.plan().threads()];
            inner.version += 1;
            job.cv.notify_all();
        }
        execute(&shared.store, &job);
    }
}

/// Run one claimed job to its next stop (completion, pause, cancel, or
/// error) and record the resulting state transition.
fn execute(store: &JobStore, job: &Job) {
    let result = run_one(job);
    let mut inner = job.inner.lock().expect("job lock poisoned");
    match result {
        Ok(s) if s.completed => {
            inner.state = JobState::Done;
            inner.jobs_done = s.jobs;
            inner.finished_seq = Some(store.next_seq());
            job.persist_terminal(JobState::Done, None);
        }
        Ok(_) => {
            if job.cancel_flag.load(Ordering::Relaxed) {
                inner.state = JobState::Cancelled;
                inner.finished_seq = Some(store.next_seq());
                job.persist_terminal(JobState::Cancelled, None);
            } else {
                inner.state = JobState::Paused;
            }
            job.pause_flag.store(false, Ordering::Relaxed);
        }
        Err(e) => {
            let msg = e.to_string();
            inner.state = JobState::Failed;
            inner.error = Some(msg.clone());
            inner.finished_seq = Some(store.next_seq());
            job.persist_terminal(JobState::Failed, Some(&msg));
        }
    }
    inner.version += 1;
    job.cv.notify_all();
}

fn run_one(job: &Job) -> Result<RunSummary, ArmdseError> {
    let plan = job.plan();
    let ckpt = job.ckpt_path();
    let resume = ckpt.exists();
    let csv_path = job.csv_path();
    let mut csv = if resume {
        CsvSink::append(&csv_path)?
    } else {
        CsvSink::create(&csv_path)?
    };
    let mut metrics_sink = if job.spec().metrics {
        let path = job.metrics_path();
        Some(if resume && path.exists() {
            MetricsCsvSink::append(&path)?
        } else {
            MetricsCsvSink::create(&path)?
        })
    } else {
        None
    };
    let shards: Vec<AtomicUsize> = (0..plan.threads()).map(|_| AtomicUsize::new(0)).collect();
    let shards_ref: &[AtomicUsize] = &shards;
    // The observer runs at every chunk boundary, after the CSV flushed
    // and the checkpoint saved: publish progress (waking streamers) and
    // honour pause/cancel requests.
    let mut observer = |pr: &Progress| {
        {
            let mut inner = job.inner.lock().expect("job lock poisoned");
            inner.jobs_done = pr.jobs_done;
            inner.rows = pr.rows;
            inner.discarded = pr.discarded;
            inner.shards = shards_ref
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect();
            inner.version += 1;
        }
        job.cv.notify_all();
        !job.pause_flag.load(Ordering::Relaxed)
    };
    let ctl = RunControl {
        checkpoint: Some(&ckpt),
        resume,
        observer: Some(&mut observer),
        metrics: metrics_sink.as_mut().map(|m| m as &mut dyn MetricsSink),
        checkpoint_extra: None,
        reuse: ReuseMode::Inherit,
    };
    run_job_loop(job.engine(), plan, &mut csv, ctl, Some(shards_ref))
}

#[cfg(test)]
mod tests {
    use super::*;
    use armdse_kernels::{App, WorkloadScale};

    fn store(tag: &str) -> Arc<JobStore> {
        let dir = std::env::temp_dir().join(format!("armdse_scheduler_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(JobStore::open(&dir).unwrap())
    }

    fn tiny_spec(seed: u64) -> JobSpec {
        JobSpec {
            configs: 3,
            scale: WorkloadScale::Tiny,
            seed,
            threads: 2,
            apps: vec![App::Stream, App::TeaLeaf],
            chunk_jobs: 2,
            ..JobSpec::default()
        }
    }

    #[test]
    fn submitted_job_runs_to_done_with_direct_run_bytes() {
        let store = store("done");
        let sched = JobScheduler::new(Arc::clone(&store), 2);
        let job = sched.submit(tiny_spec(5)).unwrap();
        let status = job.wait_terminal();
        assert_eq!(status.state, JobState::Done);
        assert_eq!(status.jobs_done, status.total_jobs);
        assert_eq!(status.shards.len(), 2);
        assert_eq!(status.shards.iter().sum::<usize>(), status.total_jobs);
        // The job's CSV is byte-identical to a direct Engine::run of
        // the same plan.
        let direct = std::env::temp_dir().join("armdse_scheduler_done_direct.csv");
        let mut sink = CsvSink::create(&direct).unwrap();
        job.engine().run(job.plan(), &mut sink).unwrap();
        sink.chunk_end().unwrap();
        assert_eq!(
            std::fs::read(job.csv_path()).unwrap(),
            std::fs::read(&direct).unwrap()
        );
        sched.shutdown();
        let _ = std::fs::remove_file(&direct);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn queued_jobs_pause_cancel_and_resume_without_running() {
        let store = store("queued_ops");
        let sched = JobScheduler::new(Arc::clone(&store), 0); // no runners
        let a = sched.submit(tiny_spec(1)).unwrap();
        let b = sched.submit(tiny_spec(2)).unwrap();
        // Pause then resume a queued job.
        assert_eq!(sched.pause(a.id()).unwrap().state, JobState::Paused);
        assert!(matches!(
            sched.pause(a.id()),
            Err(JobOpError::BadTransition { op: "pause", .. })
        ));
        assert_eq!(sched.resume(a.id()).unwrap().state, JobState::Queued);
        // Cancel a queued job: immediate, terminal, durable.
        assert_eq!(sched.cancel(b.id()).unwrap().state, JobState::Cancelled);
        assert!(matches!(
            sched.cancel(b.id()),
            Err(JobOpError::BadTransition { op: "cancel", .. })
        ));
        assert!(matches!(sched.resume(77), Err(JobOpError::Unknown(77))));
        // A runner added later drains the queue: a runs, b never does.
        sched.add_runners(1);
        assert_eq!(a.wait_terminal().state, JobState::Done);
        assert_eq!(b.status().state, JobState::Cancelled);
        assert!(b.status().started_seq.is_none(), "cancelled before start");
        assert!(!b.csv_path().exists(), "cancelled-while-queued never ran");
        sched.shutdown();
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn priority_queue_orders_by_priority_then_id() {
        let store = store("priority");
        let sched = JobScheduler::new(Arc::clone(&store), 0);
        // Submit out of priority order; ties (priority 5) by id.
        let low = sched
            .submit(JobSpec {
                priority: 1,
                ..tiny_spec(1)
            })
            .unwrap();
        let tie_a = sched
            .submit(JobSpec {
                priority: 5,
                ..tiny_spec(2)
            })
            .unwrap();
        let tie_b = sched
            .submit(JobSpec {
                priority: 5,
                ..tiny_spec(3)
            })
            .unwrap();
        let high = sched
            .submit(JobSpec {
                priority: 9,
                ..tiny_spec(4)
            })
            .unwrap();
        sched.add_runners(1); // single runner => strictly serial order
        for j in [&low, &tie_a, &tie_b, &high] {
            assert_eq!(j.wait_terminal().state, JobState::Done);
        }
        let seq = |j: &Job| j.status().started_seq.unwrap();
        assert!(seq(&high) < seq(&tie_a), "highest priority first");
        assert!(seq(&tie_a) < seq(&tie_b), "ties break by id ascending");
        assert!(seq(&tie_b) < seq(&low), "lowest priority last");
        sched.shutdown();
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn shutdown_pauses_running_jobs_resumably() {
        let store = store("shutdown");
        let sched = JobScheduler::new(Arc::clone(&store), 1);
        // Long job (many chunks) so shutdown lands mid-campaign.
        let job = sched
            .submit(JobSpec {
                configs: 40,
                chunk_jobs: 1,
                threads: 1,
                ..tiny_spec(9)
            })
            .unwrap();
        // Wait for it to actually start producing chunks.
        let mut status = job.status();
        while status.jobs_done == 0 && !status.state.is_terminal() {
            status = job.wait_change(status.version, std::time::Duration::from_millis(200));
        }
        sched.shutdown();
        let status = job.status();
        assert_eq!(status.state, JobState::Paused);
        assert!(status.jobs_done > 0 && status.jobs_done < status.total_jobs);
        // The checkpoint on disk is loadable and matches the status.
        let c = Checkpoint::load(&job.ckpt_path()).unwrap();
        assert_eq!(c.jobs_done, status.jobs_done);
        // A fresh scheduler over the same directory resumes it to Done.
        drop(sched);
        let store2 = Arc::new(JobStore::open(store.dir()).unwrap());
        let sched2 = JobScheduler::new(Arc::clone(&store2), 1);
        let job2 = store2.get(job.id()).unwrap();
        assert_eq!(job2.status().state, JobState::Paused);
        sched2.resume(job2.id()).unwrap();
        assert_eq!(job2.wait_terminal().state, JobState::Done);
        sched2.shutdown();
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
