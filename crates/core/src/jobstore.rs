//! The session layer: named, isolated, restartable campaign jobs.
//!
//! A [`Job`] is one submitted campaign — a validated [`RunPlan`] plus a
//! fidelity tier, priority, and sink layout — owned by a [`JobStore`]
//! that gives it an id, a directory slot, and a state machine. The
//! execution side (the priority queue and runner threads) lives in
//! [`crate::scheduler::JobScheduler`]; this module is everything the
//! scheduler schedules *around*: identity, isolation, persistence, and
//! machine-readable status.
//!
//! ## Per-job isolation
//!
//! Every job owns a private [`Engine`] — its own [`WorkloadCache`] and
//! its own backend instance (and therefore its own interval-reuse
//! cache when the job runs at the memoized or sampled tier). Two
//! tenants submitting jobs with different seeds or fidelity tiers can
//! never pollute each other's memoized chains or workload cache; the
//! only shared state between concurrent jobs is the scheduler's queue
//! lock. Combined with the engine's thread-count-invariant determinism
//! contract, a job's output bytes depend only on its spec — never on
//! what else the server happens to be running (pinned by
//! `tests/server_jobs.rs`).
//!
//! [`WorkloadCache`]: armdse_kernels::WorkloadCache
//!
//! ## On-disk layout
//!
//! Inside the store directory every job `N` owns:
//!
//! ```text
//! job-N.spec.json    # the submitted spec (wire format, re-parseable)
//! job-N.csv          # the streamed dataset rows (CsvSink bytes)
//! job-N.ckpt         # armdse-checkpoint v1/v2, atomically replaced
//! job-N.metrics.csv  # per-job metrics stream (only when requested)
//! job-N.state        # terminal marker: done / cancelled / failed <msg>
//! ```
//!
//! [`JobStore::open`] rescans this layout, so a server restart recovers
//! every job: terminal jobs keep their recorded state, and anything
//! else comes back as [`JobState::Paused`] at its checkpointed position
//! — an explicit resume re-queues it and the engine's byte-identical
//! resume contract takes over. No background work survives the process;
//! recovery is purely file-driven.

use crate::engine::{Checkpoint, Engine, RunPlan, DEFAULT_CHUNK_JOBS};
use crate::error::ArmdseError;
use crate::json::{json_num, parse_json, write_json_string, Json};
use crate::orchestrator::GenOptions;
use crate::space::ParamSpace;
use armdse_kernels::{App, WorkloadScale};
use armdse_simcore::{Fidelity, Topology};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Identifier of one submitted job (assigned by the store, ascending
/// in submission order).
pub type JobId = u64;

/// Lifecycle of a job. `Queued → Running → {Done, Failed}` is the happy
/// path; `Paused` is re-enterable (`resume` re-queues), and `Done`,
/// `Failed`, `Cancelled` are terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// In the scheduler's priority queue, waiting for a runner.
    Queued,
    /// A runner thread is executing the campaign.
    Running,
    /// Stopped at a chunk boundary with a checkpoint on disk; resume
    /// continues to byte-identical output.
    Paused,
    /// Completed every job in the plan.
    Done,
    /// Aborted with an error (recorded in the status snapshot).
    Failed,
    /// Cancelled by request; the last checkpoint remains loadable.
    Cancelled,
}

impl JobState {
    /// Stable lowercase tag (wire format and state-marker files).
    pub fn tag(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Paused => "paused",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parse a state tag.
    pub fn parse(s: &str) -> Option<JobState> {
        match s {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "paused" => Some(JobState::Paused),
            "done" => Some(JobState::Done),
            "failed" => Some(JobState::Failed),
            "cancelled" => Some(JobState::Cancelled),
            _ => None,
        }
    }

    /// Whether the state is final (no further transitions).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// A submitted campaign description: the wire-format form of a
/// [`RunPlan`] plus scheduling and sink options. This is exactly what
/// `POST /jobs` accepts as a JSON body (see docs/SERVER.md).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Design points to sample (required; `0` fails validation).
    pub configs: usize,
    /// Workload input scale.
    pub scale: WorkloadScale,
    /// Base campaign seed (config `i` samples with `seed + i`).
    pub seed: u64,
    /// Worker threads (shards) the job's config range fans out over.
    pub threads: usize,
    /// Applications simulated per configuration.
    pub apps: Vec<App>,
    /// Features pinned to fixed values by name.
    pub pins: Vec<(String, f64)>,
    /// Jobs per chunk (checkpoint cadence; never changes output bytes).
    pub chunk_jobs: usize,
    /// Scheduling priority: higher runs first; ties run in submission
    /// order (job-id ascending) — deterministic, pinned by test.
    pub priority: i64,
    /// Simulation tier the job's private engine runs at.
    pub fidelity: Fidelity,
    /// Also stream a per-job metrics CSV (cycle accounting per job).
    pub metrics: bool,
    /// Cores of the simulated machine: 1 (the default) runs the
    /// single-core path; larger values run the [`MultiCore`] layer, one
    /// workload replica per core over a shared L2+DRAM. Multicore jobs
    /// require full fidelity (validated at parse time).
    ///
    /// [`MultiCore`]: armdse_simcore::MultiCore
    pub cores: u32,
    /// Interleaved banks of the shared L2 (the shared-bandwidth design
    /// axis); the default is the single-core hierarchy's bank count.
    pub banks: u32,
}

impl Default for JobSpec {
    fn default() -> JobSpec {
        JobSpec {
            configs: 0,
            scale: WorkloadScale::Standard,
            seed: 0x5EED,
            threads: 1,
            apps: App::ALL.to_vec(),
            pins: Vec::new(),
            chunk_jobs: DEFAULT_CHUNK_JOBS,
            priority: 0,
            fidelity: Fidelity::Full,
            metrics: false,
            cores: Topology::default().cores,
            banks: Topology::default().banks,
        }
    }
}

impl JobSpec {
    /// Validate into a [`RunPlan`] over `space`.
    pub fn plan(&self, space: &ParamSpace) -> Result<RunPlan, ArmdseError> {
        let opts = GenOptions {
            configs: self.configs,
            scale: self.scale,
            seed: self.seed,
            threads: self.threads,
            apps: self.apps.clone(),
        };
        let pins: Vec<(&str, f64)> = self.pins.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        Ok(RunPlan::pinned(space, &opts, &pins)?.with_chunk_jobs(self.chunk_jobs))
    }

    /// The machine topology the spec requests (values clamped to 1).
    pub fn topology(&self) -> Topology {
        Topology {
            cores: self.cores.max(1),
            banks: self.banks.max(1),
        }
    }

    /// Build the job's private engine: the requested fidelity tier on
    /// the default machine, or the multicore machine layer when the
    /// spec asks for a non-default topology (always full fidelity —
    /// the parser rejects multicore + memoized/sampled combinations).
    pub fn engine(&self) -> Engine {
        let t = self.topology();
        if t == Topology::default() {
            Engine::with_fidelity(self.fidelity)
        } else {
            Engine::multicore(t.cores, t.banks)
        }
    }

    /// Serialize to the canonical wire JSON (round-trips through
    /// [`JobSpec::from_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n");
        out.push_str(&format!("  \"configs\": {},\n", self.configs));
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale.name()));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str("  \"apps\": [");
        for (i, a) in self.apps.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_json_string(a.name(), &mut out);
        }
        out.push_str("],\n  \"pins\": {");
        for (i, (n, v)) in self.pins.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_json_string(n, &mut out);
            out.push_str(": ");
            out.push_str(&json_num(*v));
        }
        out.push_str("},\n");
        out.push_str(&format!("  \"chunk_jobs\": {},\n", self.chunk_jobs));
        // The machine topology is emitted only when non-default, so
        // pre-multicore specs keep their wire bytes.
        if self.topology() != Topology::default() {
            out.push_str(&format!("  \"cores\": {},\n", self.cores));
            out.push_str(&format!("  \"banks\": {},\n", self.banks));
        }
        out.push_str(&format!("  \"priority\": {},\n", self.priority));
        out.push_str(&format!("  \"fidelity\": \"{}\",\n", self.fidelity.tag()));
        match self.fidelity {
            Fidelity::Full => {}
            Fidelity::Memoized { interval_len } => {
                out.push_str(&format!("  \"interval_len\": {interval_len},\n"));
            }
            Fidelity::Sampled {
                interval_len,
                warmup,
            } => {
                out.push_str(&format!("  \"interval_len\": {interval_len},\n"));
                out.push_str(&format!("  \"warmup\": {warmup},\n"));
            }
        }
        out.push_str(&format!("  \"metrics\": {}\n}}\n", self.metrics));
        out
    }

    /// Parse the wire JSON. Strict: unknown keys and ill-typed values
    /// are errors (a typo'd field silently ignored would run the wrong
    /// campaign), missing optional keys take [`JobSpec::default`]
    /// values, and `configs` is required.
    pub fn from_json(body: &str) -> Result<JobSpec, ArmdseError> {
        let bad = |m: String| ArmdseError::InvalidPlan(m);
        let v = parse_json(body).map_err(|e| bad(format!("bad JSON: {e}")))?;
        let obj = v
            .as_object()
            .ok_or_else(|| bad("job spec must be a JSON object".into()))?;
        let mut spec = JobSpec::default();
        let mut have_configs = false;
        let mut interval_len = None;
        let mut warmup = None;
        let mut fidelity_tag = "full".to_string();
        for (key, val) in obj {
            let uint = || -> Result<u64, ArmdseError> {
                val.as_u64()
                    .ok_or_else(|| bad(format!("\"{key}\" must be a non-negative integer")))
            };
            match key.as_str() {
                "configs" => {
                    spec.configs = uint()? as usize;
                    have_configs = true;
                }
                "scale" => {
                    let s = val
                        .as_str()
                        .ok_or_else(|| bad("\"scale\" must be a string".into()))?;
                    spec.scale = WorkloadScale::parse(s)
                        .ok_or_else(|| bad(format!("unknown scale \"{s}\"")))?;
                }
                "seed" => spec.seed = uint()?,
                "threads" => spec.threads = (uint()? as usize).max(1),
                "apps" => {
                    let arr = val
                        .as_array()
                        .ok_or_else(|| bad("\"apps\" must be an array".into()))?;
                    spec.apps = arr
                        .iter()
                        .map(|a| {
                            a.as_str()
                                .and_then(App::parse)
                                .ok_or_else(|| bad(format!("unknown app {a:?}")))
                        })
                        .collect::<Result<Vec<App>, ArmdseError>>()?;
                }
                "pins" => {
                    let m = val
                        .as_object()
                        .ok_or_else(|| bad("\"pins\" must be an object".into()))?;
                    spec.pins = m
                        .iter()
                        .map(|(n, pv)| {
                            pv.as_f64()
                                .map(|f| (n.clone(), f))
                                .ok_or_else(|| bad(format!("pin \"{n}\" must be a number")))
                        })
                        .collect::<Result<Vec<(String, f64)>, ArmdseError>>()?;
                }
                "chunk_jobs" => spec.chunk_jobs = (uint()? as usize).max(1),
                "cores" => {
                    let n = uint()?;
                    if n == 0 {
                        return Err(bad("\"cores\" must be at least 1".into()));
                    }
                    spec.cores = n as u32;
                }
                "banks" => {
                    let n = uint()?;
                    if n == 0 {
                        return Err(bad("\"banks\" must be at least 1".into()));
                    }
                    spec.banks = n as u32;
                }
                "priority" => {
                    let n = val
                        .as_f64()
                        .ok_or_else(|| bad("\"priority\" must be an integer".into()))?;
                    if n.fract() != 0.0 || !(i64::MIN as f64..=i64::MAX as f64).contains(&n) {
                        return Err(bad("\"priority\" must be an integer".into()));
                    }
                    spec.priority = n as i64;
                }
                "fidelity" => {
                    fidelity_tag = val
                        .as_str()
                        .ok_or_else(|| bad("\"fidelity\" must be a string".into()))?
                        .to_string();
                }
                "interval_len" => interval_len = Some(uint()?),
                "warmup" => warmup = Some(uint()?),
                "metrics" => {
                    spec.metrics = val
                        .as_bool()
                        .ok_or_else(|| bad("\"metrics\" must be a boolean".into()))?;
                }
                other => return Err(bad(format!("unknown key \"{other}\""))),
            }
        }
        if !have_configs {
            return Err(bad("missing required key \"configs\"".into()));
        }
        spec.fidelity = match fidelity_tag.as_str() {
            "full" => {
                if interval_len.is_some() || warmup.is_some() {
                    return Err(bad(
                        "\"interval_len\"/\"warmup\" only apply to memoized/sampled fidelity"
                            .into(),
                    ));
                }
                Fidelity::Full
            }
            "memoized" => Fidelity::Memoized {
                interval_len: interval_len.unwrap_or(armdse_simcore::DEFAULT_INTERVAL_LEN),
            },
            "sampled" => Fidelity::Sampled {
                interval_len: interval_len.unwrap_or(armdse_simcore::DEFAULT_INTERVAL_LEN),
                warmup: warmup.unwrap_or(armdse_simcore::DEFAULT_WARMUP),
            },
            other => return Err(bad(format!("unknown fidelity \"{other}\""))),
        };
        if spec.topology() != Topology::default() && spec.fidelity != Fidelity::Full {
            return Err(bad(
                "multicore jobs (\"cores\"/\"banks\") require full fidelity".into(),
            ));
        }
        Ok(spec)
    }
}

/// A machine-readable snapshot of one job's position and state: what
/// `GET /jobs/<id>` returns, and what every scheduler operation hands
/// back. Values are consistent with each other (taken under one lock).
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Job id.
    pub id: JobId,
    /// Current lifecycle state.
    pub state: JobState,
    /// Scheduling priority (higher first).
    pub priority: i64,
    /// Total simulation jobs in the plan (`configs × apps`).
    pub total_jobs: usize,
    /// Simulation jobs completed (always a chunk boundary).
    pub jobs_done: usize,
    /// Validated rows streamed so far.
    pub rows: usize,
    /// Validation-failed runs so far.
    pub discarded: usize,
    /// Simulation jobs executed per worker shard in the current run
    /// session (observability only — shard assignment is racy by
    /// design; the output bytes never depend on it).
    pub shards: Vec<usize>,
    /// Fidelity tier tag (`full` / `memoized` / `sampled`).
    pub fidelity: &'static str,
    /// Error message (`Failed` jobs only).
    pub error: Option<String>,
    /// Global sequence stamp when a runner picked the job up (None if
    /// it never started). Monotone across the store: pins execution
    /// order in tests.
    pub started_seq: Option<u64>,
    /// Global sequence stamp when the job reached a terminal state.
    pub finished_seq: Option<u64>,
    /// Change counter: bumped on every state or progress transition.
    /// Streamers wait for it to move instead of polling blindly.
    pub version: u64,
}

impl JobStatus {
    /// Fraction of the campaign completed, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.jobs_done as f64 / self.total_jobs.max(1) as f64
    }

    /// Serialize as the wire-format status object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"id\": {}, \"state\": \"{}\", \"priority\": {}, \"total_jobs\": {}, \
             \"jobs_done\": {}, \"rows\": {}, \"discarded\": {}, \"shards\": [",
            self.id,
            self.state.tag(),
            self.priority,
            self.total_jobs,
            self.jobs_done,
            self.rows,
            self.discarded
        ));
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&s.to_string());
        }
        out.push_str(&format!(
            "], \"fidelity\": \"{}\", \"error\": ",
            self.fidelity
        ));
        match &self.error {
            Some(e) => write_json_string(e, &mut out),
            None => out.push_str("null"),
        }
        out.push_str(&format!(", \"version\": {}}}", self.version));
        out
    }

    /// Parse a wire-format status object (the client side).
    pub fn from_json(body: &str) -> Result<JobStatus, String> {
        let v = parse_json(body)?;
        let obj = v.as_object().ok_or("status must be a JSON object")?;
        let uint = |key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing numeric \"{key}\""))
        };
        let state_tag = obj
            .get("state")
            .and_then(Json::as_str)
            .ok_or("missing \"state\"")?;
        let state = JobState::parse(state_tag).ok_or_else(|| format!("bad state {state_tag:?}"))?;
        let fidelity = match obj.get("fidelity").and_then(Json::as_str) {
            Some("memoized") => "memoized",
            Some("sampled") => "sampled",
            _ => "full",
        };
        Ok(JobStatus {
            id: uint("id")?,
            state,
            priority: obj
                .get("priority")
                .and_then(Json::as_f64)
                .ok_or("missing \"priority\"")? as i64,
            total_jobs: uint("total_jobs")? as usize,
            jobs_done: uint("jobs_done")? as usize,
            rows: uint("rows")? as usize,
            discarded: uint("discarded")? as usize,
            shards: obj
                .get("shards")
                .and_then(Json::as_array)
                .map(|a| {
                    a.iter()
                        .filter_map(Json::as_u64)
                        .map(|n| n as usize)
                        .collect()
                })
                .unwrap_or_default(),
            fidelity,
            error: obj.get("error").and_then(Json::as_str).map(str::to_string),
            started_seq: None,
            finished_seq: None,
            version: uint("version").unwrap_or(0),
        })
    }
}

/// Why a pause/resume/cancel request was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOpError {
    /// No job with this id exists in the store.
    Unknown(JobId),
    /// The job's current state does not admit the requested operation.
    BadTransition {
        /// Target job.
        id: JobId,
        /// State the job was in when the request arrived.
        state: JobState,
        /// The refused operation (`"pause"` / `"resume"` / `"cancel"`).
        op: &'static str,
    },
}

impl fmt::Display for JobOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobOpError::Unknown(id) => write!(f, "unknown job {id}"),
            JobOpError::BadTransition { id, state, op } => {
                write!(f, "cannot {op} job {id} in state {state}")
            }
        }
    }
}

impl std::error::Error for JobOpError {}

/// Mutable position/state of a job, guarded by the job's mutex.
#[derive(Debug, Clone)]
pub(crate) struct JobInner {
    pub(crate) state: JobState,
    pub(crate) jobs_done: usize,
    pub(crate) rows: usize,
    pub(crate) discarded: usize,
    pub(crate) shards: Vec<usize>,
    pub(crate) error: Option<String>,
    pub(crate) started_seq: Option<u64>,
    pub(crate) finished_seq: Option<u64>,
    pub(crate) version: u64,
}

/// One submitted campaign: spec, validated plan, private engine, state.
pub struct Job {
    id: JobId,
    spec: JobSpec,
    plan: RunPlan,
    engine: Engine,
    dir: PathBuf,
    pub(crate) inner: Mutex<JobInner>,
    pub(crate) cv: Condvar,
    /// Cooperative stop-and-checkpoint request (checked at chunk ends).
    pub(crate) pause_flag: AtomicBool,
    /// Cooperative cancel request (implies pause; decides the terminal
    /// state the runner records).
    pub(crate) cancel_flag: AtomicBool,
}

impl Job {
    /// Job id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The submitted spec.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// The validated plan.
    pub fn plan(&self) -> &RunPlan {
        &self.plan
    }

    /// The job's private engine (isolated caches).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Path of the job's streamed dataset CSV.
    pub fn csv_path(&self) -> PathBuf {
        self.dir.join(format!("job-{}.csv", self.id))
    }

    /// Path of the job's checkpoint file.
    pub fn ckpt_path(&self) -> PathBuf {
        self.dir.join(format!("job-{}.ckpt", self.id))
    }

    /// Path of the job's metrics CSV (exists only for `metrics` jobs).
    pub fn metrics_path(&self) -> PathBuf {
        self.dir.join(format!("job-{}.metrics.csv", self.id))
    }

    fn spec_path(&self) -> PathBuf {
        self.dir.join(format!("job-{}.spec.json", self.id))
    }

    fn state_path(&self) -> PathBuf {
        self.dir.join(format!("job-{}.state", self.id))
    }

    /// Consistent status snapshot.
    pub fn status(&self) -> JobStatus {
        let inner = self.inner.lock().expect("job lock poisoned");
        self.status_locked(&inner)
    }

    pub(crate) fn status_locked(&self, inner: &JobInner) -> JobStatus {
        JobStatus {
            id: self.id,
            state: inner.state,
            priority: self.spec.priority,
            total_jobs: self.plan.jobs(),
            jobs_done: inner.jobs_done,
            rows: inner.rows,
            discarded: inner.discarded,
            shards: inner.shards.clone(),
            fidelity: self.spec.fidelity.tag(),
            error: inner.error.clone(),
            started_seq: inner.started_seq,
            finished_seq: inner.finished_seq,
            version: inner.version,
        }
    }

    /// Block until the job reaches a terminal state.
    pub fn wait_terminal(&self) -> JobStatus {
        let mut inner = self.inner.lock().expect("job lock poisoned");
        while !inner.state.is_terminal() {
            inner = self.cv.wait(inner).expect("job lock poisoned");
        }
        self.status_locked(&inner)
    }

    /// Block until the status `version` moves past `last_version`, the
    /// job is already past it, or `timeout` elapses; returns the
    /// current snapshot either way. The streaming endpoints drive their
    /// read loop off this instead of sleeping blind.
    pub fn wait_change(&self, last_version: u64, timeout: Duration) -> JobStatus {
        let mut inner = self.inner.lock().expect("job lock poisoned");
        if inner.version == last_version && !inner.state.is_terminal() {
            let (guard, _) = self
                .cv
                .wait_timeout(inner, timeout)
                .expect("job lock poisoned");
            inner = guard;
        }
        self.status_locked(&inner)
    }

    /// Record a terminal state marker atomically (tmp + rename), so a
    /// restarted store recovers the exact state.
    pub(crate) fn persist_terminal(&self, state: JobState, error: Option<&str>) {
        debug_assert!(state.is_terminal());
        let body = match error {
            Some(e) => format!("{}\n{e}\n", state.tag()),
            None => format!("{}\n", state.tag()),
        };
        let path = self.state_path();
        let tmp = path.with_extension("state.tmp");
        if std::fs::write(&tmp, body).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }
}

/// The job registry: assigns ids, owns every [`Job`], and rebuilds
/// itself from its directory on restart.
pub struct JobStore {
    dir: PathBuf,
    space: ParamSpace,
    jobs: Mutex<BTreeMap<JobId, Arc<Job>>>,
    next_id: AtomicU64,
    seq: AtomicU64,
}

impl JobStore {
    /// Open (or create) a store at `dir` over the paper's parameter
    /// space, recovering any jobs already on disk: terminal jobs keep
    /// their recorded state; everything else returns as `Paused` at its
    /// checkpointed position, ready for an explicit resume.
    pub fn open(dir: &Path) -> Result<JobStore, ArmdseError> {
        std::fs::create_dir_all(dir)?;
        let store = JobStore {
            dir: dir.to_path_buf(),
            space: ParamSpace::paper(),
            jobs: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            seq: AtomicU64::new(1),
        };
        let mut max_id = 0;
        let mut names: Vec<String> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok()?.file_name().into_string().ok())
            .filter(|n| n.starts_with("job-") && n.ends_with(".spec.json"))
            .collect();
        names.sort();
        for name in names {
            let id: JobId = match name["job-".len()..name.len() - ".spec.json".len()].parse() {
                Ok(id) => id,
                Err(_) => continue,
            };
            let body = std::fs::read_to_string(dir.join(&name))?;
            let spec = match JobSpec::from_json(&body) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("[jobstore] skipping unparsable {name}: {e}");
                    continue;
                }
            };
            let job = match store.build_job(id, spec) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("[jobstore] skipping invalid {name}: {e}");
                    continue;
                }
            };
            // Recover position from the checkpoint and state from the
            // terminal marker (absent marker => Paused, resumable).
            {
                let mut inner = job.inner.lock().expect("job lock poisoned");
                if let Ok(c) = Checkpoint::load(&job.ckpt_path()) {
                    inner.jobs_done = c.jobs_done;
                    inner.rows = c.rows;
                    inner.discarded = c.discarded;
                }
                inner.state = JobState::Paused;
                if let Ok(marker) = std::fs::read_to_string(job.state_path()) {
                    let mut lines = marker.lines();
                    if let Some(state) = lines.next().and_then(JobState::parse) {
                        inner.state = state;
                        if state == JobState::Failed {
                            inner.error = Some(lines.collect::<Vec<_>>().join("\n"));
                        }
                    }
                }
            }
            max_id = max_id.max(id);
            store
                .jobs
                .lock()
                .expect("store lock poisoned")
                .insert(id, job);
        }
        store.next_id.store(max_id + 1, Ordering::Relaxed);
        Ok(store)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn build_job(&self, id: JobId, spec: JobSpec) -> Result<Arc<Job>, ArmdseError> {
        let plan = spec.plan(&self.space)?;
        let engine = spec.engine();
        Ok(Arc::new(Job {
            id,
            spec,
            plan,
            engine,
            dir: self.dir.clone(),
            inner: Mutex::new(JobInner {
                state: JobState::Queued,
                jobs_done: 0,
                rows: 0,
                discarded: 0,
                shards: Vec::new(),
                error: None,
                started_seq: None,
                finished_seq: None,
                version: 0,
            }),
            cv: Condvar::new(),
            pause_flag: AtomicBool::new(false),
            cancel_flag: AtomicBool::new(false),
        }))
    }

    /// Validate `spec`, assign an id, persist the spec, and register
    /// the job as `Queued`. (Submission is the scheduler's job — it
    /// calls this and then enqueues.)
    pub fn create(&self, spec: JobSpec) -> Result<Arc<Job>, ArmdseError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let job = self.build_job(id, spec)?;
        std::fs::write(job.spec_path(), job.spec.to_json())?;
        self.jobs
            .lock()
            .expect("store lock poisoned")
            .insert(id, Arc::clone(&job));
        Ok(job)
    }

    /// Look up one job.
    pub fn get(&self, id: JobId) -> Option<Arc<Job>> {
        self.jobs
            .lock()
            .expect("store lock poisoned")
            .get(&id)
            .cloned()
    }

    /// All jobs, id-ascending.
    pub fn list(&self) -> Vec<Arc<Job>> {
        self.jobs
            .lock()
            .expect("store lock poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Per-state job counts (the `/stats` endpoint's `jobs` object).
    pub fn state_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for job in self.list() {
            *counts.entry(job.status().state.tag()).or_insert(0) += 1;
        }
        counts
    }

    /// Next global sequence stamp (orders job starts/finishes).
    pub(crate) fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            configs: 3,
            scale: WorkloadScale::Tiny,
            seed: 11,
            threads: 2,
            apps: vec![App::Stream, App::TeaLeaf],
            pins: vec![("Vector-Length".into(), 128.0)],
            chunk_jobs: 4,
            priority: 7,
            fidelity: Fidelity::Memoized { interval_len: 512 },
            metrics: true,
            cores: 1,
            banks: Topology::default().banks,
        }
    }

    #[test]
    fn spec_round_trips_through_wire_json() {
        let s = spec();
        let back = JobSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        // Sampled carries warmup too.
        let s2 = JobSpec {
            fidelity: Fidelity::Sampled {
                interval_len: 256,
                warmup: 1024,
            },
            ..spec()
        };
        assert_eq!(JobSpec::from_json(&s2.to_json()).unwrap(), s2);
        // Multicore topology round-trips too (full fidelity required).
        let s3 = JobSpec {
            fidelity: Fidelity::Full,
            cores: 2,
            banks: 4,
            ..spec()
        };
        assert_eq!(JobSpec::from_json(&s3.to_json()).unwrap(), s3);
    }

    #[test]
    fn default_topology_keeps_the_wire_bytes() {
        // A single-core spec must not mention cores/banks at all, so
        // pre-multicore clients and stored specs stay byte-compatible.
        let s = JobSpec {
            fidelity: Fidelity::Full,
            ..spec()
        };
        let wire = s.to_json();
        assert!(!wire.contains("cores"), "{wire}");
        assert!(!wire.contains("banks"), "{wire}");
    }

    #[test]
    fn multicore_spec_is_validated() {
        // cores/banks must be positive.
        assert!(JobSpec::from_json("{\"configs\": 2, \"cores\": 0}").is_err());
        assert!(JobSpec::from_json("{\"configs\": 2, \"banks\": 0}").is_err());
        // Multicore requires full fidelity: the machine layer has no
        // memoized/sampled tier.
        let e = JobSpec::from_json("{\"configs\": 2, \"cores\": 2, \"fidelity\": \"memoized\"}")
            .unwrap_err();
        assert!(e.to_string().contains("full fidelity"), "{e}");
        // And a valid multicore spec builds a multicore engine.
        let s = JobSpec::from_json("{\"configs\": 2, \"cores\": 2, \"banks\": 4}").unwrap();
        assert_eq!(s.topology(), Topology { cores: 2, banks: 4 });
        assert_eq!(s.engine().backend().topology(), s.topology());
    }

    #[test]
    fn spec_parser_is_strict() {
        assert!(JobSpec::from_json("[]").is_err());
        assert!(JobSpec::from_json("{").is_err());
        // configs is required.
        let e = JobSpec::from_json("{\"seed\": 1}").unwrap_err();
        assert!(e.to_string().contains("configs"), "{e}");
        // Unknown keys are rejected, not ignored.
        let e = JobSpec::from_json("{\"configs\": 2, \"confgs\": 3}").unwrap_err();
        assert!(e.to_string().contains("confgs"), "{e}");
        // Ill-typed values are rejected.
        assert!(JobSpec::from_json("{\"configs\": \"two\"}").is_err());
        assert!(JobSpec::from_json("{\"configs\": 2, \"apps\": [\"nope\"]}").is_err());
        assert!(JobSpec::from_json("{\"configs\": 2, \"scale\": \"huge\"}").is_err());
        assert!(JobSpec::from_json("{\"configs\": 2, \"fidelity\": \"best\"}").is_err());
        // interval_len makes no sense at full fidelity.
        assert!(JobSpec::from_json("{\"configs\": 2, \"interval_len\": 64}").is_err());
    }

    #[test]
    fn minimal_spec_takes_defaults() {
        let s = JobSpec::from_json("{\"configs\": 5}").unwrap();
        assert_eq!(s.configs, 5);
        assert_eq!(s.scale, WorkloadScale::Standard);
        assert_eq!(s.apps, App::ALL.to_vec());
        assert_eq!(s.fidelity, Fidelity::Full);
        assert_eq!(s.priority, 0);
        assert!(!s.metrics);
    }

    #[test]
    fn status_round_trips_through_wire_json() {
        let status = JobStatus {
            id: 9,
            state: JobState::Failed,
            priority: -2,
            total_jobs: 80,
            jobs_done: 40,
            rows: 39,
            discarded: 1,
            shards: vec![21, 19],
            fidelity: "memoized",
            error: Some("checkpoint error: boom".into()),
            started_seq: None,
            finished_seq: None,
            version: 12,
        };
        let back = JobStatus::from_json(&status.to_json()).unwrap();
        assert_eq!(back, status);
        assert!((status.fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn store_assigns_ascending_ids_and_isolates_engines() {
        let dir = std::env::temp_dir().join("armdse_jobstore_ids");
        let _ = std::fs::remove_dir_all(&dir);
        let store = JobStore::open(&dir).unwrap();
        let a = store.create(spec()).unwrap();
        let b = store.create(spec()).unwrap();
        assert!(a.id() < b.id());
        assert_eq!(store.list().len(), 2);
        // Same spec, distinct engines: caches are per-job.
        assert!(!std::ptr::eq(a.engine(), b.engine()));
        assert_eq!(store.get(a.id()).unwrap().id(), a.id());
        assert!(store.get(999).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_rejects_invalid_specs() {
        let dir = std::env::temp_dir().join("armdse_jobstore_invalid");
        let _ = std::fs::remove_dir_all(&dir);
        let store = JobStore::open(&dir).unwrap();
        let err = match store.create(JobSpec {
            configs: 0,
            ..spec()
        }) {
            Err(e) => e,
            Ok(_) => panic!("configs == 0 must be rejected"),
        };
        assert!(matches!(err, ArmdseError::InvalidPlan(_)), "{err}");
        assert!(store.list().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopened_store_recovers_specs_states_and_positions() {
        let dir = std::env::temp_dir().join("armdse_jobstore_reopen");
        let _ = std::fs::remove_dir_all(&dir);
        let store = JobStore::open(&dir).unwrap();
        let a = store.create(spec()).unwrap();
        let b = store.create(spec()).unwrap();
        let c = store.create(spec()).unwrap();
        // a: done marker; b: failed marker; c: mid-campaign checkpoint.
        a.persist_terminal(JobState::Done, None);
        b.persist_terminal(JobState::Failed, Some("sim exploded"));
        Checkpoint {
            fingerprint: c.plan().fingerprint(),
            jobs_done: 4,
            rows: 4,
            discarded: 0,
            extra: Vec::new(),
        }
        .save(&c.ckpt_path())
        .unwrap();
        let (ida, idb, idc) = (a.id(), b.id(), c.id());
        drop((a, b, c, store));

        let store = JobStore::open(&dir).unwrap();
        assert_eq!(store.list().len(), 3);
        assert_eq!(store.get(ida).unwrap().status().state, JobState::Done);
        let st_b = store.get(idb).unwrap().status();
        assert_eq!(st_b.state, JobState::Failed);
        assert_eq!(st_b.error.as_deref(), Some("sim exploded"));
        let st_c = store.get(idc).unwrap().status();
        assert_eq!(st_c.state, JobState::Paused);
        assert_eq!(st_c.jobs_done, 4);
        // Recovered specs are intact and new ids continue after the max.
        assert_eq!(store.get(idc).unwrap().spec(), &spec());
        let d = store.create(spec()).unwrap();
        assert!(d.id() > idc);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
