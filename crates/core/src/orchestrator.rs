//! Back-compat dataset generation — the stand-in for the paper's
//! `xci_launcher.sh` / `run_xci.sh` orchestration (artifact A₂, task T₁).
//!
//! The chunked, resumable job loop now lives in [`crate::engine`]; the
//! free functions here are thin shims kept for existing callers. New
//! code should build a [`crate::engine::RunPlan`] and stream through
//! [`crate::engine::Engine::run`] — that path returns typed errors,
//! checkpoints, and resumes, none of which a bare [`DseDataset`] return
//! value can express.

use crate::dataset::DseDataset;
use crate::engine::{Engine, RunPlan};
use crate::space::ParamSpace;
use armdse_kernels::{App, WorkloadScale};

/// Dataset-generation options.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Number of design points to sample.
    pub configs: usize,
    /// Workload input scale.
    pub scale: WorkloadScale,
    /// Base seed; config `i` uses `seed + i`.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Applications to simulate per configuration (duplicates are
    /// ignored — plan validation deduplicates order-preserving).
    pub apps: Vec<App>,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            configs: 256,
            scale: WorkloadScale::Standard,
            seed: 0x5EED,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            apps: App::ALL.to_vec(),
        }
    }
}

/// Generate a dataset by simulating every app on `configs` sampled design
/// points. Deterministic for fixed (`seed`, `configs`, `apps`, `scale`).
///
/// Shim over [`Engine::run`]; panics on an invalid plan (zero configs or
/// no apps), matching the old `assert!` behaviour. Fallible callers
/// should use [`RunPlan::new`] and handle the error.
pub fn generate_dataset(space: &ParamSpace, opts: &GenOptions) -> DseDataset {
    generate_dataset_pinned(space, opts, &[])
}

/// Like [`generate_dataset`], but with features pinned to fixed values by
/// name (the paper's Figs. 4/5 constrain Vector-Length to 128/2048).
pub fn generate_dataset_pinned(
    space: &ParamSpace,
    opts: &GenOptions,
    pins: &[(&str, f64)],
) -> DseDataset {
    let plan = RunPlan::pinned(space, opts, pins).expect("invalid generation plan");
    let engine = Engine::idealized();
    let mut dataset = DseDataset::default();
    engine
        .run(&plan, &mut dataset)
        .expect("in-memory dataset sink cannot fail");
    if !dataset.discarded.is_empty() {
        eprintln!(
            "[orchestrator] discarded {} of {} runs that failed validation",
            dataset.discarded.len(),
            plan.jobs()
        );
    }
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DesignConfig;
    use armdse_kernels::build_workload;

    fn opts(configs: usize, threads: usize) -> GenOptions {
        GenOptions {
            configs,
            scale: WorkloadScale::Tiny,
            seed: 99,
            threads,
            apps: vec![App::Stream, App::TeaLeaf],
        }
    }

    #[test]
    fn generates_rows_for_each_app_and_config() {
        let d = generate_dataset(&ParamSpace::paper(), &opts(6, 2));
        // All runs on sane sampled configs should validate.
        assert_eq!(d.rows.len(), 12);
        assert_eq!(d.for_app(App::Stream).len(), 6);
        assert_eq!(d.for_app(App::TeaLeaf).len(), 6);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let a = generate_dataset(&ParamSpace::paper(), &opts(5, 1));
        let b = generate_dataset(&ParamSpace::paper(), &opts(5, 4));
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_results() {
        let mut o1 = opts(4, 2);
        let mut o2 = opts(4, 2);
        o1.seed = 1;
        o2.seed = 2;
        let a = generate_dataset(&ParamSpace::paper(), &o1);
        let b = generate_dataset(&ParamSpace::paper(), &o2);
        assert_ne!(a, b);
    }

    #[test]
    fn sane_configs_discard_nothing() {
        let d = generate_dataset(&ParamSpace::paper(), &opts(6, 2));
        assert!(
            d.discarded.is_empty(),
            "unexpected discards: {:?}",
            d.discarded
        );
    }

    #[test]
    fn duplicate_apps_do_not_double_count() {
        let mut o = opts(4, 2);
        o.apps = vec![App::Stream, App::Stream, App::TeaLeaf, App::Stream];
        let d = generate_dataset(&ParamSpace::paper(), &o);
        assert_eq!(
            d.rows.len(),
            8,
            "duplicates must be deduplicated, not re-run"
        );
        assert_eq!(d, generate_dataset(&ParamSpace::paper(), &opts(4, 2)));
    }

    #[test]
    fn wedged_run_is_reported_not_silently_dropped() {
        // A pathological L1 latency pushes CPI past the safety guard; the
        // run must surface as a DiscardedRun, not vanish.
        let mut cfg = DesignConfig::thunderx2();
        cfg.mem.l1_latency = 100_000;
        cfg.mem.l2_latency = 200_000;
        let w = build_workload(App::Stream, WorkloadScale::Tiny, cfg.core.vector_length);
        let stats = armdse_simcore::simulate(&w.program, &cfg.core, &cfg.mem);
        assert!(!stats.validated);
        assert!(stats.hit_cycle_limit);
        // Through the engine path the failure surfaces as a DiscardedRun.
        // (Direct check: a dataset generated over only-wedged configs
        // would record it; here we assert the stats-level contract the
        // engine's run_job relies on.)
        assert!(stats.cycles > 0);
    }

    #[test]
    fn rows_preserve_job_order() {
        let d = generate_dataset(&ParamSpace::paper(), &opts(3, 3));
        // Expect interleaved app order per config: Stream, TeaLeaf, ...
        let apps: Vec<App> = d.rows.iter().map(|r| r.app).collect();
        assert_eq!(
            apps,
            vec![
                App::Stream,
                App::TeaLeaf,
                App::Stream,
                App::TeaLeaf,
                App::Stream,
                App::TeaLeaf
            ]
        );
    }
}
