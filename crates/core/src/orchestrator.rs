//! Parallel dataset generation — the stand-in for the paper's
//! `xci_launcher.sh` / `run_xci.sh` orchestration (artifact A₂, task T₁):
//! "orchestrate each run through automated generation of the core's
//! configuration file as well as the SST memory model file, followed by
//! dispatching multiple instances of SimEng at once and collecting the
//! returned statistics from each run."
//!
//! Work is distributed over worker threads by an atomic job counter; each
//! job is one (configuration, application) simulation. Configurations are
//! derived from `seed + config_index`, so results are byte-identical
//! regardless of thread count or scheduling. Only validated runs (the
//! paper keeps only runs passing each app's built-in validation) are
//! recorded.

use crate::config::DesignConfig;
use crate::dataset::{DiscardedRun, DseDataset, Row};
use crate::space::ParamSpace;
use armdse_kernels::{build_workload, App, Workload, WorkloadScale};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Dataset-generation options.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Number of design points to sample.
    pub configs: usize,
    /// Workload input scale.
    pub scale: WorkloadScale,
    /// Base seed; config `i` uses `seed + i`.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Applications to simulate per configuration.
    pub apps: Vec<App>,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            configs: 256,
            scale: WorkloadScale::Standard,
            seed: 0x5EED,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            apps: App::ALL.to_vec(),
        }
    }
}

/// Generate a dataset by simulating every app on `configs` sampled design
/// points. Deterministic for fixed (`seed`, `configs`, `apps`, `scale`).
pub fn generate_dataset(space: &ParamSpace, opts: &GenOptions) -> DseDataset {
    generate_dataset_pinned(space, opts, &[])
}

/// Like [`generate_dataset`], but with features pinned to fixed values by
/// name (the paper's Figs. 4/5 constrain Vector-Length to 128/2048).
pub fn generate_dataset_pinned(
    space: &ParamSpace,
    opts: &GenOptions,
    pins: &[(&str, f64)],
) -> DseDataset {
    assert!(!opts.apps.is_empty() && opts.configs > 0);
    let n_jobs = opts.configs * opts.apps.len();

    // Workloads depend only on (app, scale, VL): prebuild all of them once
    // and share across threads, keyed for O(1) lookup per job.
    let workloads: HashMap<(App, u32), Workload> = opts
        .apps
        .iter()
        .flat_map(|&app| {
            space
                .vector_lengths
                .iter()
                .map(move |&vl| ((app, vl), build_workload(app, opts.scale, vl)))
        })
        .collect();
    let lookup = |app: App, vl: u32| -> &Workload {
        workloads.get(&(app, vl)).expect("workload prebuilt for every (app, VL)")
    };

    let counter = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, Result<Row, DiscardedRun>)>> =
        Mutex::new(Vec::with_capacity(n_jobs));
    let threads = opts.threads.clamp(1, n_jobs);

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut local: Vec<(usize, Result<Row, DiscardedRun>)> = Vec::new();
                loop {
                    let job = counter.fetch_add(1, Ordering::Relaxed);
                    if job >= n_jobs {
                        break;
                    }
                    let cfg_idx = job / opts.apps.len();
                    let app = opts.apps[job % opts.apps.len()];
                    let cfg =
                        space.sample_seeded_pinned(opts.seed + cfg_idx as u64, pins);
                    local.push((
                        job,
                        run_one(app, cfg_idx, &cfg, lookup(app, cfg.core.vector_length)),
                    ));
                }
                results.lock().expect("worker poisoned results").append(&mut local);
            });
        }
    });

    let mut collected = results.into_inner().expect("worker poisoned results");
    collected.sort_unstable_by_key(|(job, _)| *job);
    let mut dataset = DseDataset::default();
    for (_, r) in collected {
        match r {
            Ok(row) => dataset.rows.push(row),
            Err(d) => dataset.discarded.push(d),
        }
    }
    if !dataset.discarded.is_empty() {
        eprintln!(
            "[orchestrator] discarded {} of {} runs that failed validation",
            dataset.discarded.len(),
            n_jobs
        );
    }
    dataset
}

/// Run one simulation; `Err` reports a run that failed validation (the
/// paper discards such runs — we additionally record what was dropped).
fn run_one(
    app: App,
    config_index: usize,
    cfg: &DesignConfig,
    w: &Workload,
) -> Result<Row, DiscardedRun> {
    let stats = armdse_simcore::simulate(&w.program, &cfg.core, &cfg.mem);
    if stats.validated {
        Ok(Row {
            app,
            features: cfg.to_features(),
            cycles: stats.cycles,
            sve_fraction: stats.sve_fraction(),
        })
    } else {
        Err(DiscardedRun {
            app,
            config_index,
            cycles: stats.cycles,
            hit_cycle_limit: stats.hit_cycle_limit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(configs: usize, threads: usize) -> GenOptions {
        GenOptions {
            configs,
            scale: WorkloadScale::Tiny,
            seed: 99,
            threads,
            apps: vec![App::Stream, App::TeaLeaf],
        }
    }

    #[test]
    fn generates_rows_for_each_app_and_config() {
        let d = generate_dataset(&ParamSpace::paper(), &opts(6, 2));
        // All runs on sane sampled configs should validate.
        assert_eq!(d.rows.len(), 12);
        assert_eq!(d.for_app(App::Stream).len(), 6);
        assert_eq!(d.for_app(App::TeaLeaf).len(), 6);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let a = generate_dataset(&ParamSpace::paper(), &opts(5, 1));
        let b = generate_dataset(&ParamSpace::paper(), &opts(5, 4));
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_results() {
        let mut o1 = opts(4, 2);
        let mut o2 = opts(4, 2);
        o1.seed = 1;
        o2.seed = 2;
        let a = generate_dataset(&ParamSpace::paper(), &o1);
        let b = generate_dataset(&ParamSpace::paper(), &o2);
        assert_ne!(a, b);
    }

    #[test]
    fn sane_configs_discard_nothing() {
        let d = generate_dataset(&ParamSpace::paper(), &opts(6, 2));
        assert!(d.discarded.is_empty(), "unexpected discards: {:?}", d.discarded);
    }

    #[test]
    fn wedged_run_is_reported_not_silently_dropped() {
        // A pathological L1 latency pushes CPI past the safety guard; the
        // run must surface as a DiscardedRun, not vanish.
        let mut cfg = DesignConfig::thunderx2();
        cfg.mem.l1_latency = 100_000;
        cfg.mem.l2_latency = 200_000;
        let w = build_workload(App::Stream, WorkloadScale::Tiny, cfg.core.vector_length);
        let d = run_one(App::Stream, 7, &cfg, &w).unwrap_err();
        assert!(d.hit_cycle_limit);
        assert_eq!(d.config_index, 7);
        assert_eq!(d.app, App::Stream);
        assert!(d.cycles > 0);
    }

    #[test]
    fn rows_preserve_job_order() {
        let d = generate_dataset(&ParamSpace::paper(), &opts(3, 3));
        // Expect interleaved app order per config: Stream, TeaLeaf, ...
        let apps: Vec<App> = d.rows.iter().map(|r| r.app).collect();
        assert_eq!(
            apps,
            vec![
                App::Stream,
                App::TeaLeaf,
                App::Stream,
                App::TeaLeaf,
                App::Stream,
                App::TeaLeaf
            ]
        );
    }
}
