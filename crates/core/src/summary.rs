//! Dataset summary statistics — quick sanity analysis of a generated
//! dataset before model training (the paper's dataset was sanity-checked
//! the same way before `analysis.py` ran).

use crate::config::FEATURE_NAMES;
use crate::dataset::DseDataset;
use armdse_kernels::App;

/// Distribution summary of one app's cycle counts.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSummary {
    /// Application name.
    pub app: String,
    /// Row count.
    pub rows: usize,
    /// Minimum cycles.
    pub min: u64,
    /// Median cycles.
    pub median: u64,
    /// Arithmetic mean cycles.
    pub mean: f64,
    /// Maximum cycles.
    pub max: u64,
    /// Mean SVE fraction across rows.
    pub mean_sve: f64,
}

/// Whole-dataset summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// One summary per application present.
    pub apps: Vec<AppSummary>,
    /// Per-feature (min, max) over all rows — confirms the sampler
    /// covered each parameter's range.
    pub feature_ranges: Vec<(String, f64, f64)>,
}

impl DseDataset {
    /// Compute distribution and coverage summaries.
    pub fn summary(&self) -> DatasetSummary {
        let apps = App::ALL
            .iter()
            .filter_map(|&app| {
                let mut cycles: Vec<u64> = self.for_app(app).iter().map(|r| r.cycles).collect();
                if cycles.is_empty() {
                    return None;
                }
                cycles.sort_unstable();
                let n = cycles.len();
                let sve: f64 = self
                    .for_app(app)
                    .iter()
                    .map(|r| r.sve_fraction)
                    .sum::<f64>()
                    / n as f64;
                Some(AppSummary {
                    app: app.name().to_string(),
                    rows: n,
                    min: cycles[0],
                    median: cycles[n / 2],
                    mean: cycles.iter().sum::<u64>() as f64 / n as f64,
                    max: cycles[n - 1],
                    mean_sve: sve,
                })
            })
            .collect();

        let feature_ranges = FEATURE_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let (lo, hi) = self
                    .rows
                    .iter()
                    .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), r| {
                        (lo.min(r.features[i]), hi.max(r.features[i]))
                    });
                (name.to_string(), lo, hi)
            })
            .collect();

        DatasetSummary {
            apps,
            feature_ranges,
        }
    }
}

impl DatasetSummary {
    /// Render as a text report.
    pub fn to_table(&self) -> String {
        let mut out = String::from("Dataset summary\n");
        out.push_str(&format!(
            "{:>10} {:>7} {:>10} {:>10} {:>12} {:>10} {:>7}\n",
            "App", "rows", "min", "median", "mean", "max", "SVE%"
        ));
        for a in &self.apps {
            out.push_str(&format!(
                "{:>10} {:>7} {:>10} {:>10} {:>12.0} {:>10} {:>6.1}%\n",
                a.app,
                a.rows,
                a.min,
                a.median,
                a.mean,
                a.max,
                100.0 * a.mean_sve
            ));
        }
        out
    }

    /// Spread of the target variable for one app (`max / min`), the
    /// dynamic range the surrogate has to capture.
    pub fn cycle_spread(&self, app: App) -> Option<f64> {
        self.apps
            .iter()
            .find(|a| a.app == app.name())
            .map(|a| a.max as f64 / a.min.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Row;
    use crate::DesignConfig;

    fn data() -> DseDataset {
        let f = DesignConfig::thunderx2().to_features();
        DseDataset {
            rows: vec![
                Row {
                    app: App::Stream,
                    features: f,
                    cycles: 100,
                    sve_fraction: 0.5,
                },
                Row {
                    app: App::Stream,
                    features: f,
                    cycles: 300,
                    sve_fraction: 0.6,
                },
                Row {
                    app: App::Stream,
                    features: f,
                    cycles: 200,
                    sve_fraction: 0.4,
                },
            ],
            discarded: Vec::new(),
        }
    }

    #[test]
    fn summary_statistics() {
        let s = data().summary();
        assert_eq!(s.apps.len(), 1);
        let a = &s.apps[0];
        assert_eq!((a.min, a.median, a.max), (100, 200, 300));
        assert!((a.mean - 200.0).abs() < 1e-9);
        assert!((a.mean_sve - 0.5).abs() < 1e-9);
    }

    #[test]
    fn feature_ranges_cover_rows() {
        let s = data().summary();
        assert_eq!(s.feature_ranges.len(), 30);
        let (name, lo, hi) = &s.feature_ranges[0];
        assert_eq!(name, "Vector-Length");
        assert_eq!((*lo, *hi), (128.0, 128.0));
    }

    #[test]
    fn cycle_spread() {
        let s = data().summary();
        assert!((s.cycle_spread(App::Stream).unwrap() - 3.0).abs() < 1e-9);
        assert!(s.cycle_spread(App::TeaLeaf).is_none());
    }

    #[test]
    fn table_renders() {
        let t = data().summary().to_table();
        assert!(t.contains("STREAM"));
        assert!(t.contains("median"));
    }
}
