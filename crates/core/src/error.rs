//! Typed errors for the DSE framework.
//!
//! User-facing entry points (plan validation, checkpointed campaign
//! runs, streaming sinks) return [`ArmdseError`] instead of panicking
//! on bad input: a malformed plan or an unreadable checkpoint is an
//! ordinary error a campaign driver can report and recover from, not a
//! library `assert!`.

use std::fmt;
use std::io;

/// Errors surfaced by the engine layer.
#[derive(Debug)]
pub enum ArmdseError {
    /// A generation plan failed validation (zero configs, no apps,
    /// unknown pinned feature, ...).
    InvalidPlan(String),
    /// A checkpoint file was missing a field, malformed, or belongs to
    /// a different plan.
    Checkpoint(String),
    /// Adaptive exploration failed (inconsistent resume state, replayed
    /// model hash mismatch, corrupt curve artifact, ...).
    Explore(String),
    /// An I/O failure while streaming rows or persisting a checkpoint.
    Io(io::Error),
}

impl fmt::Display for ArmdseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArmdseError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
            ArmdseError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            ArmdseError::Explore(m) => write!(f, "exploration error: {m}"),
            ArmdseError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ArmdseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArmdseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ArmdseError {
    fn from(e: io::Error) -> ArmdseError {
        ArmdseError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ArmdseError::InvalidPlan("configs == 0".into());
        assert_eq!(e.to_string(), "invalid plan: configs == 0");
        let e = ArmdseError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn io_error_keeps_its_source() {
        use std::error::Error;
        let e = ArmdseError::from(io::Error::other("disk"));
        assert!(e.source().is_some());
        assert!(ArmdseError::Checkpoint("x".into()).source().is_none());
    }
}
