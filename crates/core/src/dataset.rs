//! The simulated dataset: rows of (app, features, cycles) with CSV
//! persistence — the stand-in for the paper's `collect_data.py` database.

use crate::config::{DesignConfig, FEATURE_NAMES};
use armdse_kernels::App;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// One simulated data point.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Application simulated.
    pub app: App,
    /// The 30 design-space features.
    pub features: [f64; 30],
    /// Simulated execution cycles (the target variable).
    pub cycles: u64,
    /// SVE fraction of retired instructions (Fig. 1 bookkeeping).
    pub sve_fraction: f64,
}

/// A run that was discarded because its simulation failed validation
/// (wedged against the cycle limit, or retired counts diverging from the
/// analytic summary). The paper silently keeps only validation-passing
/// runs; we record what was dropped so a mis-modelled design point is
/// visible instead of shrinking the dataset without a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscardedRun {
    /// Application simulated.
    pub app: App,
    /// Index of the sampled configuration (re-derivable from the seed).
    pub config_index: usize,
    /// Cycles consumed before the run was abandoned.
    pub cycles: u64,
    /// Whether the run was abandoned at the safety cycle limit (as
    /// opposed to failing operation-count validation).
    pub hit_cycle_limit: bool,
}

/// A dataset of simulated runs across apps and configurations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DseDataset {
    /// All rows (only validated simulations are recorded).
    pub rows: Vec<Row>,
    /// Runs dropped by validation (not persisted to CSV; empty after
    /// [`DseDataset::load_csv`]).
    pub discarded: Vec<DiscardedRun>,
}

impl DseDataset {
    /// Rows for one application.
    pub fn for_app(&self, app: App) -> Vec<&Row> {
        self.rows.iter().filter(|r| r.app == app).collect()
    }

    /// The applications present in the dataset, in [`App::EXTENDED`]
    /// order. Experiments that fan out per app (e.g. the unseen-code
    /// transfer matrix) iterate this instead of hard-coding
    /// [`App::ALL`], so a dataset generated over the extended kernel
    /// set folds the extra kernels in automatically.
    pub fn apps(&self) -> Vec<App> {
        App::EXTENDED
            .iter()
            .copied()
            .filter(|&a| self.rows.iter().any(|r| r.app == a))
            .collect()
    }

    /// Convert one app's rows into an ML dataset (features → cycles).
    pub fn ml_dataset(&self, app: App) -> armdse_mltree::Dataset {
        let rows = self.for_app(app);
        assert!(!rows.is_empty(), "no rows for {app:?}");
        let mut x = armdse_mltree::Matrix::new(30);
        let mut y = Vec::with_capacity(rows.len());
        for r in rows {
            x.push_row(&r.features);
            y.push(r.cycles as f64);
        }
        armdse_mltree::Dataset::new(x, y, FEATURE_NAMES.iter().map(|s| s.to_string()).collect())
    }

    /// Rows for an app filtered by a feature predicate (e.g. fixed VL).
    pub fn filtered(&self, app: App, pred: impl Fn(&[f64; 30]) -> bool) -> DseDataset {
        DseDataset {
            rows: self
                .rows
                .iter()
                .filter(|r| r.app == app && pred(&r.features))
                .cloned()
                .collect(),
            discarded: Vec::new(),
        }
    }

    /// Reconstruct the design config of a row.
    pub fn config_of(row: &Row) -> DesignConfig {
        DesignConfig::from_features(&row.features)
    }

    /// Write as CSV: `app,<30 features>,cycles,sve_fraction`.
    pub fn save_csv(&self, path: &Path) -> io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        write_csv_header(&mut w)?;
        for r in &self.rows {
            write_csv_row(&mut w, r)?;
        }
        w.flush()
    }

    /// Load a CSV produced by [`DseDataset::save_csv`].
    pub fn load_csv(path: &Path) -> io::Result<DseDataset> {
        let f = std::fs::File::open(path)?;
        let mut lines = io::BufReader::new(f).lines();
        let header = lines
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty csv"))??;
        let expect_cols = 1 + 30 + 2;
        if header.split(',').count() != expect_cols {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad header"));
        }
        let mut rows = Vec::new();
        for line in lines {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let mut it = line.split(',');
            let app_name = it.next().unwrap();
            let app = App::parse(app_name).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad app {app_name}"))
            })?;
            let mut features = [0.0f64; 30];
            for f in features.iter_mut() {
                *f = parse_f64(it.next())?;
            }
            let cycles = parse_f64(it.next())? as u64;
            let sve_fraction = parse_f64(it.next())?;
            rows.push(Row {
                app,
                features,
                cycles,
                sve_fraction,
            });
        }
        Ok(DseDataset {
            rows,
            discarded: Vec::new(),
        })
    }
}

/// Write the dataset CSV header line. Shared by [`DseDataset::save_csv`]
/// and the engine's streaming `CsvSink` so both emit identical bytes.
pub fn write_csv_header(w: &mut impl Write) -> io::Result<()> {
    write!(w, "app")?;
    for n in FEATURE_NAMES {
        write!(w, ",{n}")?;
    }
    writeln!(w, ",cycles,sve_fraction")
}

/// Write one dataset CSV row (same byte format as [`DseDataset::save_csv`]).
pub fn write_csv_row(w: &mut impl Write, r: &Row) -> io::Result<()> {
    write!(w, "{}", r.app.name())?;
    for f in r.features {
        write!(w, ",{f}")?;
    }
    writeln!(w, ",{},{}", r.cycles, r.sve_fraction)
}

fn parse_f64(s: Option<&str>) -> io::Result<f64> {
    s.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "short row"))?
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad number: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DseDataset {
        let cfg = DesignConfig::thunderx2();
        DseDataset {
            rows: vec![
                Row {
                    app: App::Stream,
                    features: cfg.to_features(),
                    cycles: 12345,
                    sve_fraction: 0.55,
                },
                Row {
                    app: App::TeaLeaf,
                    features: cfg.to_features(),
                    cycles: 999,
                    sve_fraction: 0.02,
                },
            ],
            discarded: Vec::new(),
        }
    }

    #[test]
    fn per_app_selection() {
        let d = sample();
        assert_eq!(d.for_app(App::Stream).len(), 1);
        assert_eq!(d.for_app(App::MiniBude).len(), 0);
    }

    #[test]
    fn ml_dataset_shape() {
        let d = sample();
        let ml = d.ml_dataset(App::Stream);
        assert_eq!(ml.len(), 1);
        assert_eq!(ml.x.cols(), 30);
        assert_eq!(ml.y[0], 12345.0);
    }

    #[test]
    fn csv_roundtrip() {
        let d = sample();
        let path = std::env::temp_dir().join("armdse_dataset_test.csv");
        d.save_csv(&path).unwrap();
        let back = DseDataset::load_csv(&path).unwrap();
        assert_eq!(d, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn filtered_by_feature() {
        let d = sample();
        let f = d.filtered(App::Stream, |feat| feat[0] == 128.0);
        assert_eq!(f.rows.len(), 1);
        let none = d.filtered(App::Stream, |feat| feat[0] == 2048.0);
        assert!(none.rows.is_empty());
    }

    #[test]
    fn config_roundtrips_through_row() {
        let d = sample();
        let cfg = DseDataset::config_of(&d.rows[0]);
        assert_eq!(cfg, DesignConfig::thunderx2());
    }
}
