//! Per-job metrics rows and pluggable metrics sinks.
//!
//! The observability counterpart of [`crate::engine::RowSink`]: when a
//! campaign runs with metrics enabled, the engine executes every job
//! through [`armdse_simcore::SimBackend::run_with_metrics`] and streams
//! one [`MetricsRow`] per job — *including* validation-discarded jobs,
//! flagged via [`MetricsRow::validated`] — into a [`MetricsSink`] in job
//! order. Because exactly one row is emitted per job, the metrics stream
//! shares the dataset stream's determinism guarantee: byte-identical at
//! any thread count, and checkpoint/resume-safe at chunk granularity.
//!
//! The CSV schema (one row per job) is documented column-by-column in
//! `docs/METRICS.md`; [`metrics_csv_columns`] is the single source of
//! truth for the header.

use crate::error::ArmdseError;
use armdse_kernels::App;
use armdse_memsim::MemStats;
use armdse_simcore::{Counters, StallStats};
use std::io::{BufWriter, Write};
use std::path::Path;

/// Per-event stall-counter column names (the `ev_` CSV segment).
///
/// These are the pipeline's *event* counters ([`StallStats`]): a stage
/// may record several per cycle, so unlike the exclusive `stall_*`
/// cycle-attribution buckets they do not sum to the cycle count. The
/// loop-buffer counter is omitted here because it already rides in the
/// [`Counters`] segment as `loop_buffer_cycles`.
pub const EVENT_COLUMNS: [&str; 9] = [
    "ev_rename_gp",
    "ev_rename_fp",
    "ev_rename_pred",
    "ev_rename_cond",
    "ev_rob_full",
    "ev_rs_full",
    "ev_lq_full",
    "ev_sq_full",
    "ev_fetch_starved",
];

/// [`StallStats`] values in [`EVENT_COLUMNS`] order.
pub fn event_values(s: &StallStats) -> [u64; 9] {
    [
        s.rename_gp,
        s.rename_fp,
        s.rename_pred,
        s.rename_cond,
        s.rob_full,
        s.rs_full,
        s.lq_full,
        s.sq_full,
        s.fetch_starved,
    ]
}

/// One job's worth of observability counters.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRow {
    /// Global job index (`config_index × apps + app slot`).
    pub job: usize,
    /// Design-point index within the campaign (seed offset).
    pub config_index: usize,
    /// Application simulated.
    pub app: App,
    /// Which core the row describes on a multicore backend: `None` is
    /// the per-job aggregate (always emitted, and the only row kind on
    /// single-core backends); `Some(i)` is the per-core detail row for
    /// core `i`, emitted after the aggregate when the backend runs more
    /// than one core. The CSV cell is empty for aggregate rows.
    pub core: Option<u32>,
    /// Whether the run passed output validation (discarded jobs still
    /// emit a metrics row, with this flag false).
    pub validated: bool,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub retired: u64,
    /// Exclusive cycle-attribution buckets and occupancy histograms.
    pub counters: Counters,
    /// Non-exclusive per-stage stall event counters.
    pub stalls: StallStats,
    /// Memory-hierarchy counters.
    pub mem: MemStats,
}

/// Receives the deterministic metrics stream of a campaign, in job
/// order. Mirrors [`crate::engine::RowSink`]: `chunk_end` fires at every
/// chunk boundary *before* the engine persists a checkpoint, so durable
/// sinks are never behind the checkpoint.
pub trait MetricsSink {
    /// Receive one per-job metrics row.
    fn metrics(&mut self, row: &MetricsRow) -> Result<(), ArmdseError>;

    /// Chunk boundary: make buffered output durable (default: no-op).
    fn chunk_end(&mut self) -> Result<(), ArmdseError> {
        Ok(())
    }
}

/// The in-memory sink: collects every row.
impl MetricsSink for Vec<MetricsRow> {
    fn metrics(&mut self, row: &MetricsRow) -> Result<(), ArmdseError> {
        self.push(row.clone());
        Ok(())
    }
}

/// The full metrics CSV header, in emission order: job identity, then
/// the [`Counters`] segment, then the `ev_` event segment, then the
/// [`MemStats`] segment.
pub fn metrics_csv_columns() -> Vec<String> {
    let mut cols: Vec<String> = [
        "job",
        "config_index",
        "app",
        "core",
        "validated",
        "cycles",
        "retired",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    cols.extend(Counters::column_names());
    cols.extend(EVENT_COLUMNS.iter().map(|s| s.to_string()));
    cols.extend(MemStats::column_names().iter().map(|s| s.to_string()));
    cols
}

/// Write the metrics CSV header line.
pub fn write_metrics_header(w: &mut impl Write) -> std::io::Result<()> {
    writeln!(w, "{}", metrics_csv_columns().join(","))
}

/// Write one metrics CSV row (column order pinned by
/// [`metrics_csv_columns`]).
pub fn write_metrics_row(w: &mut impl Write, r: &MetricsRow) -> std::io::Result<()> {
    let core = r.core.map_or(String::new(), |c| c.to_string());
    write!(
        w,
        "{},{},{},{},{},{},{}",
        r.job,
        r.config_index,
        r.app.name(),
        core,
        u8::from(r.validated),
        r.cycles,
        r.retired
    )?;
    for v in r.counters.values() {
        write!(w, ",{v}")?;
    }
    for v in event_values(&r.stalls) {
        write!(w, ",{v}")?;
    }
    for v in r.mem.values() {
        write!(w, ",{v}")?;
    }
    writeln!(w)
}

/// Streams metrics rows straight to a CSV file (constant memory), the
/// observability analogue of [`crate::engine::CsvSink`].
pub struct MetricsCsvSink {
    w: BufWriter<std::fs::File>,
    rows_written: usize,
}

impl MetricsCsvSink {
    /// Create (truncate) `path` and write the CSV header.
    pub fn create(path: &Path) -> Result<MetricsCsvSink, ArmdseError> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        write_metrics_header(&mut w)?;
        Ok(MetricsCsvSink { w, rows_written: 0 })
    }

    /// Open `path` for appending (resume: header already present).
    pub fn append(path: &Path) -> Result<MetricsCsvSink, ArmdseError> {
        let f = std::fs::OpenOptions::new().append(true).open(path)?;
        Ok(MetricsCsvSink {
            w: BufWriter::new(f),
            rows_written: 0,
        })
    }

    /// Rows written through this sink instance.
    pub fn rows_written(&self) -> usize {
        self.rows_written
    }
}

impl MetricsSink for MetricsCsvSink {
    fn metrics(&mut self, row: &MetricsRow) -> Result<(), ArmdseError> {
        write_metrics_row(&mut self.w, row)?;
        self.rows_written += 1;
        Ok(())
    }

    fn chunk_end(&mut self) -> Result<(), ArmdseError> {
        self.w.flush()?;
        self.w.get_ref().sync_data().map_err(ArmdseError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armdse_simcore::CoreParams;

    fn sample_row() -> MetricsRow {
        MetricsRow {
            job: 3,
            config_index: 1,
            app: App::Stream,
            core: None,
            validated: true,
            cycles: 100,
            retired: 250,
            counters: Counters::new(&CoreParams::thunderx2()),
            stalls: StallStats::default(),
            mem: MemStats::default(),
        }
    }

    #[test]
    fn header_and_row_have_the_same_arity() {
        let mut header = Vec::new();
        let mut row = Vec::new();
        write_metrics_header(&mut header).unwrap();
        write_metrics_row(&mut row, &sample_row()).unwrap();
        let h = String::from_utf8(header).unwrap();
        let r = String::from_utf8(row).unwrap();
        assert_eq!(
            h.trim_end().split(',').count(),
            r.trim_end().split(',').count()
        );
    }

    #[test]
    fn identity_columns_lead_the_header() {
        let cols = metrics_csv_columns();
        assert_eq!(
            &cols[..7],
            &[
                "job",
                "config_index",
                "app",
                "core",
                "validated",
                "cycles",
                "retired"
            ]
        );
        assert!(cols.iter().any(|c| c == "stall_rob_full"));
        assert!(cols.iter().any(|c| c == "ev_rob_full"));
        assert!(cols.iter().any(|c| c == "dram_queue_wait_cycles"));
        let unique: std::collections::BTreeSet<&String> = cols.iter().collect();
        assert_eq!(unique.len(), cols.len(), "duplicate column name");
    }

    #[test]
    fn event_columns_align_with_values() {
        let s = StallStats {
            rob_full: 7,
            fetch_starved: 2,
            ..Default::default()
        };
        let vals = event_values(&s);
        assert_eq!(vals.len(), EVENT_COLUMNS.len());
        let at = |name: &str| vals[EVENT_COLUMNS.iter().position(|c| *c == name).unwrap()];
        assert_eq!(at("ev_rob_full"), 7);
        assert_eq!(at("ev_fetch_starved"), 2);
    }

    #[test]
    fn vec_sink_collects_rows() {
        let mut sink: Vec<MetricsRow> = Vec::new();
        sink.metrics(&sample_row()).unwrap();
        sink.chunk_end().unwrap();
        assert_eq!(sink.len(), 1);
        assert_eq!(sink[0].job, 3);
    }

    #[test]
    fn csv_sink_create_then_append_is_one_stream() {
        let path = std::env::temp_dir().join("armdse_metrics_sink_unit.csv");
        let mut r = sample_row();
        {
            let mut s = MetricsCsvSink::create(&path).unwrap();
            s.metrics(&r).unwrap();
            s.chunk_end().unwrap();
            assert_eq!(s.rows_written(), 1);
        }
        {
            r.job = 4;
            let mut s = MetricsCsvSink::append(&path).unwrap();
            s.metrics(&r).unwrap();
            s.chunk_end().unwrap();
        }
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 3, "header + two rows");
        assert!(body.lines().nth(1).unwrap().starts_with("3,1,STREAM,,1,"));
        assert!(body.lines().nth(2).unwrap().starts_with("4,1,STREAM,,1,"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn per_core_rows_carry_the_core_index() {
        let mut out = Vec::new();
        let mut r = sample_row();
        r.core = Some(1);
        write_metrics_row(&mut out, &r).unwrap();
        let line = String::from_utf8(out).unwrap();
        assert!(line.starts_with("3,1,STREAM,1,1,"), "{line}");
        // Arity is unchanged between aggregate and per-core rows.
        assert_eq!(
            line.trim_end().split(',').count(),
            metrics_csv_columns().len()
        );
    }
}
