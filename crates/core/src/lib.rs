//! # armdse-core — the design-space exploration framework
//!
//! The paper's contribution C1/C2 as a library: a thirty-feature
//! constrained design space over the core and memory simulators, seeded
//! uniform sampling, a parallel simulation orchestrator, dataset
//! persistence, and the per-application decision-tree surrogate pipeline.
//!
//! ## Pipeline (paper workflow T1 → T2 → T3)
//!
//! ```text
//! ParamSpace::paper() ──sample──► DesignConfig ──SimBackend──► SimStats
//!        │                                                        │
//!        └──────── Engine::run(RunPlan, &mut dyn RowSink) ────────┘
//!                              │
//!              DseDataset / CsvSink (+ checkpoint/resume)
//!                              │
//!               SurrogateSuite::train (per-app trees,
//!               tolerance curves, permutation importances)
//! ```
//!
//! Campaigns run through the [`engine`]: a validated [`engine::RunPlan`]
//! executed by an [`engine::Engine`] (pluggable simulation backend plus a
//! shared workload cache) that streams rows in deterministic job order
//! into any [`engine::RowSink`], checkpointing after each chunk so an
//! interrupted run resumes to byte-identical output. The old
//! `orchestrator::generate_dataset*` free functions remain as thin shims.
//!
//! ## Example
//!
//! ```
//! use armdse_core::engine::{Engine, RunPlan};
//! use armdse_core::{orchestrator::GenOptions, space::ParamSpace, surrogate::SurrogateSuite};
//! use armdse_core::DseDataset;
//! use armdse_kernels::{App, WorkloadScale};
//!
//! let opts = GenOptions {
//!     configs: 40,
//!     scale: WorkloadScale::Tiny,
//!     seed: 1,
//!     threads: 2,
//!     apps: vec![App::Stream],
//! };
//! let plan = RunPlan::new(&ParamSpace::paper(), &opts).unwrap();
//! let mut data = DseDataset::default();
//! Engine::idealized().run(&plan, &mut data).unwrap();
//! assert!(data.rows.len() <= 40 && !data.rows.is_empty());
//! let suite = SurrogateSuite::train(&data, 0.2, 7);
//! assert_eq!(suite.models.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod dataset;
pub mod engine;
pub mod error;
pub mod explorer;
pub mod jobstore;
pub mod json;
pub mod metrics;
pub mod orchestrator;
pub mod scheduler;
pub mod space;
pub mod summary;
pub mod surrogate;

pub use config::DesignConfig;
pub use dataset::{DseDataset, Row};
pub use engine::{CsvSink, Engine, Progress, ReuseMode, RowSink, RunControl, RunPlan, RunSummary};
pub use error::ArmdseError;
pub use explorer::{ExploreControl, ExploreOptions, ExploreProgress, ExploreReport, Explorer};
pub use jobstore::{Job, JobId, JobOpError, JobSpec, JobState, JobStatus, JobStore};
pub use metrics::{MetricsCsvSink, MetricsRow, MetricsSink};
pub use scheduler::JobScheduler;
pub use space::{ParamSpace, FEATURE_COUNT};
pub use surrogate::{AppModel, ModelMetrics, SurrogateSuite};
