//! # armdse-core — the design-space exploration framework
//!
//! The paper's contribution C1/C2 as a library: a thirty-feature
//! constrained design space over the core and memory simulators, seeded
//! uniform sampling, a parallel simulation orchestrator, dataset
//! persistence, and the per-application decision-tree surrogate pipeline.
//!
//! ## Pipeline (paper workflow T1 → T2 → T3)
//!
//! ```text
//! ParamSpace::paper() ──sample──► DesignConfig ──runner──► SimStats
//!        │                                                    │
//!        └──── orchestrator::generate_dataset ────────────────┘
//!                              │
//!                        DseDataset (CSV)
//!                              │
//!               SurrogateSuite::train (per-app trees,
//!               tolerance curves, permutation importances)
//! ```
//!
//! ## Example
//!
//! ```
//! use armdse_core::{orchestrator::GenOptions, space::ParamSpace, surrogate::SurrogateSuite};
//! use armdse_kernels::{App, WorkloadScale};
//!
//! let opts = GenOptions {
//!     configs: 40,
//!     scale: WorkloadScale::Tiny,
//!     seed: 1,
//!     threads: 2,
//!     apps: vec![App::Stream],
//! };
//! let data = armdse_core::orchestrator::generate_dataset(&ParamSpace::paper(), &opts);
//! assert!(data.rows.len() <= 40 && !data.rows.is_empty());
//! let suite = SurrogateSuite::train(&data, 0.2, 7);
//! assert_eq!(suite.models.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod dataset;
pub mod orchestrator;
pub mod runner;
pub mod space;
pub mod summary;
pub mod surrogate;

pub use config::DesignConfig;
pub use dataset::{DseDataset, Row};
pub use space::{ParamSpace, FEATURE_COUNT};
pub use surrogate::{AppModel, ModelMetrics, SurrogateSuite};
