//! Single-simulation runner: workload construction + core simulation.
//!
//! Superseded by [`crate::engine::Engine`], which memoises workload
//! construction and makes the backend pluggable; the free functions
//! here rebuild the workload on every call and are kept only for
//! existing callers.

use crate::config::DesignConfig;
use armdse_kernels::{build_workload, App, Workload, WorkloadScale};
use armdse_simcore::SimStats;

/// Build the workload and simulate it on the default (SST-like) memory
/// hierarchy. One call = one of the paper's T2 simulation tasks.
#[deprecated(note = "use `engine::Engine::simulate_config`, which caches workloads")]
pub fn simulate(app: App, scale: WorkloadScale, cfg: &DesignConfig) -> SimStats {
    let w = build_workload(app, scale, cfg.core.vector_length);
    simulate_workload(&w, cfg)
}

/// Simulate a pre-built workload (callers that sweep non-VL parameters
/// can reuse one workload across many configs).
pub fn simulate_workload(w: &Workload, cfg: &DesignConfig) -> SimStats {
    debug_assert!(
        !w.program.name.is_empty(),
        "workload must be lowered from a named kernel"
    );
    armdse_simcore::simulate(&w.program, &cfg.core, &cfg.mem)
}

/// Simulate on the finite-banked hardware-proxy hierarchy (the Table I
/// "hardware" side; see DESIGN.md substitution table).
#[deprecated(note = "use `engine::Engine::simulate_config_on` with `armdse_simcore::BankedProxy`")]
pub fn simulate_hardware_proxy(app: App, scale: WorkloadScale, cfg: &DesignConfig) -> SimStats {
    let w = build_workload(app, scale, cfg.core.vector_length);
    armdse_simcore::simulate_hardware_proxy(&w.program, &cfg.core, &cfg.mem)
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the shims must keep working until removed

    use super::*;

    #[test]
    fn baseline_runs_all_apps() {
        let cfg = DesignConfig::thunderx2();
        for app in App::ALL {
            let s = simulate(app, WorkloadScale::Tiny, &cfg);
            assert!(s.validated, "{app:?}");
        }
    }

    #[test]
    fn workload_reuse_matches_fresh_build() {
        let cfg = DesignConfig::thunderx2();
        let w = build_workload(App::Stream, WorkloadScale::Tiny, cfg.core.vector_length);
        let a = simulate_workload(&w, &cfg);
        let b = simulate(App::Stream, WorkloadScale::Tiny, &cfg);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn proxy_differs_from_simulator() {
        let cfg = DesignConfig::thunderx2();
        let sim = simulate(App::Stream, WorkloadScale::Small, &cfg);
        let hw = simulate_hardware_proxy(App::Stream, WorkloadScale::Small, &cfg);
        assert_ne!(sim.cycles, hw.cycles);
    }
}
