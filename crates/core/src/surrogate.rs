//! Per-application surrogate training and introspection — the paper's
//! contribution C2 (the `analysis.py` stage of artifact A₂).
//!
//! One decision-tree regressor is trained per application ("We train a
//! separate model per application to allow for a more flexible approach"),
//! on an 80/20 randomised split, and introspected with permutation
//! feature importance.

use crate::config::FEATURE_NAMES;
use crate::dataset::DseDataset;
use armdse_kernels::App;
use armdse_mltree::{
    mae, mean_relative_accuracy, permutation_importance, r2, train_test_split, within_tolerance,
    DecisionTreeRegressor, ImportanceReport, Regressor,
};

/// Confidence intervals of the paper's Fig. 2 (relative tolerance).
pub const TOLERANCES: [f64; 7] = [0.005, 0.01, 0.02, 0.05, 0.10, 0.25, 0.50];

/// Accuracy metrics for one app's model on its held-out test split.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelMetrics {
    /// (tolerance, fraction of predictions within tolerance) — Fig. 2.
    pub tolerance_curve: Vec<(f64, f64)>,
    /// Mean relative accuracy percent (paper headline: 93.38% average).
    pub accuracy_pct: f64,
    /// Mean absolute error in cycles.
    pub mae: f64,
    /// Coefficient of determination.
    pub r2: f64,
    /// Training-set size.
    pub n_train: usize,
    /// Test-set size.
    pub n_test: usize,
}

/// A trained, evaluated, and introspected per-app surrogate.
#[derive(Debug, Clone)]
pub struct AppModel {
    /// Application this model predicts.
    pub app: App,
    /// The fitted decision tree.
    pub tree: DecisionTreeRegressor,
    /// Held-out accuracy metrics.
    pub metrics: ModelMetrics,
    /// Permutation feature importance on the test split (10 repeats,
    /// MAE scoring, percent-normalised — §VI-B).
    pub importance: ImportanceReport,
}

/// The full per-application model suite.
#[derive(Debug, Clone)]
pub struct SurrogateSuite {
    /// One model per application present in the dataset.
    pub models: Vec<AppModel>,
}

impl SurrogateSuite {
    /// Train one tree per app found in `data` with a randomised
    /// `test_frac` hold-out (the paper: 0.2) and seeded determinism.
    pub fn train(data: &DseDataset, test_frac: f64, seed: u64) -> SurrogateSuite {
        let models = App::ALL
            .iter()
            .filter(|&&app| !data.for_app(app).is_empty())
            .map(|&app| train_app(data, app, test_frac, seed))
            .collect();
        SurrogateSuite { models }
    }

    /// Model for one app.
    pub fn model(&self, app: App) -> Option<&AppModel> {
        self.models.iter().find(|m| m.app == app)
    }

    /// Mean accuracy across apps (the paper's aggregate 93.38% number).
    pub fn mean_accuracy_pct(&self) -> f64 {
        assert!(!self.models.is_empty());
        self.models
            .iter()
            .map(|m| m.metrics.accuracy_pct)
            .sum::<f64>()
            / self.models.len() as f64
    }

    /// Mean importance percentage of a feature across apps — the basis of
    /// the paper's "vector length … 25.91% of our performance weighting".
    pub fn mean_importance_pct(&self, feature: &str) -> f64 {
        assert!(!self.models.is_empty());
        self.models
            .iter()
            .map(|m| m.importance.percent_of(feature).unwrap_or(0.0))
            .sum::<f64>()
            / self.models.len() as f64
    }
}

fn train_app(data: &DseDataset, app: App, test_frac: f64, seed: u64) -> AppModel {
    let ml = data.ml_dataset(app);
    let (train, test) = train_test_split(&ml, test_frac, seed);
    let tree = DecisionTreeRegressor::fit(&train.x, &train.y);
    let pred = tree.predict(&test.x);

    let metrics = ModelMetrics {
        tolerance_curve: TOLERANCES
            .iter()
            .map(|&t| (t, within_tolerance(&pred, &test.y, t)))
            .collect(),
        accuracy_pct: mean_relative_accuracy(&pred, &test.y),
        mae: mae(&pred, &test.y),
        r2: r2(&pred, &test.y),
        n_train: train.len(),
        n_test: test.len(),
    };

    let names: Vec<String> = FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
    let importance = permutation_importance(&tree, &test.x, &test.y, &names, 10, seed ^ 0xABCD);

    AppModel {
        app,
        tree,
        metrics,
        importance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::{generate_dataset, GenOptions};
    use crate::space::ParamSpace;
    use armdse_kernels::WorkloadScale;

    fn small_dataset() -> DseDataset {
        generate_dataset(
            &ParamSpace::paper(),
            &GenOptions {
                configs: 60,
                scale: WorkloadScale::Tiny,
                seed: 4242,
                threads: 2,
                apps: vec![App::Stream, App::MiniBude],
            },
        )
    }

    #[test]
    fn trains_one_model_per_app_present() {
        let suite = SurrogateSuite::train(&small_dataset(), 0.2, 1);
        assert_eq!(suite.models.len(), 2);
        assert!(suite.model(App::Stream).is_some());
        assert!(suite.model(App::TeaLeaf).is_none());
    }

    #[test]
    fn tolerance_curve_is_monotone_nondecreasing() {
        let suite = SurrogateSuite::train(&small_dataset(), 0.2, 1);
        for m in &suite.models {
            let c = &m.metrics.tolerance_curve;
            for w in c.windows(2) {
                assert!(w[1].1 >= w[0].1, "{:?}", c);
            }
            assert_eq!(c.len(), TOLERANCES.len());
        }
    }

    #[test]
    fn accuracy_in_percent_range() {
        let suite = SurrogateSuite::train(&small_dataset(), 0.2, 1);
        let acc = suite.mean_accuracy_pct();
        assert!((0.0..=100.0).contains(&acc), "{acc}");
    }

    #[test]
    fn importance_report_covers_thirty_features() {
        let suite = SurrogateSuite::train(&small_dataset(), 0.2, 1);
        for m in &suite.models {
            assert_eq!(m.importance.features.len(), 30);
        }
        // Mean importance query works for a known feature.
        let _ = suite.mean_importance_pct("Vector-Length");
    }

    #[test]
    fn deterministic_training() {
        let d = small_dataset();
        let a = SurrogateSuite::train(&d, 0.2, 5);
        let b = SurrogateSuite::train(&d, 0.2, 5);
        assert_eq!(a.models[0].metrics, b.models[0].metrics);
    }
}
