//! Shape tests: the qualitative results of the paper's evaluation must
//! hold in this reproduction (who wins, roughly by what factor, where the
//! knees fall). Quantitative paper-vs-measured numbers live in
//! EXPERIMENTS.md; these tests pin the shapes so regressions are caught.

use armdse::analysis::sweeps::{self, SweepOptions};
use armdse::analysis::{fig1, table1};
use armdse::core::space::ParamSpace;
use armdse::core::Engine;
use armdse::kernels::{App, WorkloadScale};

fn sweep_opts() -> SweepOptions {
    SweepOptions {
        base_configs: 4,
        scale: WorkloadScale::Small,
        seed: 808,
    }
}

/// Fig. 1 shape: STREAM/miniBUDE heavily vectorised at every VL;
/// TeaLeaf marginal; MiniSweep not at all.
#[test]
fn fig1_vectorisation_split() {
    let f = fig1::run(&Engine::idealized(), WorkloadScale::Small);
    for vl in fig1::VLS {
        assert!(f.sve_pct(App::Stream, vl).unwrap() > 40.0);
        assert!(f.sve_pct(App::MiniBude, vl).unwrap() > 60.0);
        assert!(f.sve_pct(App::TeaLeaf, vl).unwrap() < 10.0);
        assert!(f.sve_pct(App::MiniSweep, vl).unwrap() < 0.5);
    }
}

/// Table I shape: the simulator lands within tens of percent of the
/// hardware proxy, with error varying by app (access-pattern dependent).
#[test]
fn table1_validation_band() {
    let t = table1::run(&Engine::idealized(), WorkloadScale::Small);
    assert_eq!(t.rows.len(), 4);
    for r in &t.rows {
        assert!(
            r.pct_difference < 60.0,
            "{} diverged {}%",
            r.app,
            r.pct_difference
        );
    }
    assert!(
        t.mean_pct_difference() > 0.5,
        "proxy should not agree exactly"
    );
}

/// Fig. 6 shape: 16x longer vectors buy a 4-16x speedup on the
/// vectorised codes (paper: 7-9x), larger for STREAM than miniBUDE.
#[test]
fn fig6_vector_length_scaling() {
    let f = sweeps::fig6(&Engine::idealized(), &ParamSpace::paper(), &sweep_opts());
    let stream = f.speedup(App::Stream, 2048).unwrap();
    let bude = f.speedup(App::MiniBude, 2048).unwrap();
    assert!((4.0..16.0).contains(&stream), "STREAM speedup {stream}");
    assert!((3.0..16.0).contains(&bude), "miniBUDE speedup {bude}");
    assert!(
        stream > bude,
        "paper: 'the larger speedup in the case of STREAM' ({stream} vs {bude})"
    );
    // Monotone increase along the sweep.
    let series = &f.series[0];
    for w in series.points.windows(2) {
        assert!(
            w[1].2 >= w[0].2 * 0.95,
            "VL speedup should grow: {:?}",
            series.points
        );
    }
}

/// Fig. 7 shape: ROB growth stops paying beyond a knee; the largest
/// benefit is on memory-bound STREAM.
#[test]
fn fig7_rob_saturation() {
    let f = sweeps::fig7(&Engine::idealized(), &ParamSpace::paper(), &sweep_opts());
    for app in App::ALL {
        let at_152 = f.speedup(app, 152).unwrap();
        let at_512 = f.speedup(app, 512).unwrap();
        assert!(at_152 > 1.2, "{app:?}: ROB should matter ({at_152})");
        assert!(
            at_512 <= at_152 * 1.35,
            "{app:?}: speedup must saturate ({at_152} -> {at_512})"
        );
    }
    let stream = f.speedup(App::Stream, 512).unwrap();
    for app in [App::MiniBude, App::TeaLeaf, App::MiniSweep] {
        assert!(
            stream >= f.speedup(app, 512).unwrap(),
            "paper: 'We find the largest impact in STREAM'"
        );
    }
}

/// Fig. 8 shape: FP/SVE registers below ~144 bottleneck rename; beyond
/// the knee further registers buy almost nothing.
#[test]
fn fig8_fp_register_wall() {
    let f = sweeps::fig8(&Engine::idealized(), &ParamSpace::paper(), &sweep_opts());
    for app in App::ALL {
        let knee = f.speedup(app, 144).unwrap();
        let max = f.speedup(app, 512).unwrap();
        assert!(knee > 1.2, "{app:?}: registers should matter ({knee})");
        assert!(
            max <= knee * 1.25,
            "{app:?}: counts beyond 144 yield minimal speedup ({knee} -> {max})"
        );
    }
}

/// The paper's §VI-B VL interaction: at VL=2048 miniBUDE sheds pressure
/// from ROB/FP registers relative to VL=128 (fewer instructions in
/// flight do the same work).
#[test]
fn long_vectors_relieve_rob_pressure_on_minibude() {
    use armdse::core::DesignConfig;
    use armdse::kernels::build_workload;

    let cycles = |vl: u32, rob: u32| {
        let mut cfg = DesignConfig::thunderx2();
        cfg.core.vector_length = vl;
        cfg.core.rob_size = rob;
        cfg.core.load_bandwidth = 256;
        cfg.core.store_bandwidth = 256;
        let w = build_workload(App::MiniBude, WorkloadScale::Small, vl);
        armdse::simcore::simulate(&w.program, &cfg.core, &cfg.mem).cycles as f64
    };
    let rob_gain_short = cycles(128, 16) / cycles(128, 256);
    let rob_gain_long = cycles(2048, 16) / cycles(2048, 256);
    assert!(
        rob_gain_long < rob_gain_short,
        "ROB pressure should relax at long vectors ({rob_gain_long} !< {rob_gain_short})"
    );
}
