//! Architectural agreement between the two memory back-ends.
//!
//! `simulate` (idealised hierarchy) and `simulate_hardware_proxy`
//! (finite-banked hierarchy, the stand-in for the paper's physical
//! ThunderX2 in Table I) model the *same* machine at different timing
//! fidelity. Everything architectural — retired instruction count,
//! per-class retirement summary, validation verdict, and the committed
//! instruction stream itself — must be identical between them; only
//! cycle counts and memory-latency attribution may differ.

use armdse::core::space::ParamSpace;
use armdse::kernels::{build_workload, App, WorkloadScale};
use armdse::oracle::ArchState;
use armdse::simcore::{simulate, simulate_hardware_proxy, simulate_traced, simulate_traced_proxy};

#[test]
fn backends_agree_architecturally_on_every_app() {
    let space = ParamSpace::paper();
    for (i, &app) in App::ALL.iter().enumerate() {
        let cfg = space.sample_seeded(0x7A6E + i as u64);
        let w = build_workload(app, WorkloadScale::Tiny, cfg.core.vector_length);
        let a = simulate(&w.program, &cfg.core, &cfg.mem);
        let b = simulate_hardware_proxy(&w.program, &cfg.core, &cfg.mem);

        assert_eq!(a.retired, b.retired, "{app:?}: retired count diverged");
        assert_eq!(a.observed, b.observed, "{app:?}: retirement summary diverged");
        assert_eq!(a.validated, b.validated, "{app:?}: validation verdict diverged");
        assert!(a.validated, "{app:?}: run failed validation");
        assert!(!a.hit_cycle_limit && !b.hit_cycle_limit);
    }
}

#[test]
fn backends_commit_the_identical_instruction_stream() {
    let cfg = armdse::core::DesignConfig::thunderx2();
    let w = build_workload(App::Stream, WorkloadScale::Tiny, cfg.core.vector_length);
    let (a, trace_a) = simulate_traced(&w.program, &cfg.core, &cfg.mem);
    let (b, trace_b) = simulate_traced_proxy(&w.program, &cfg.core, &cfg.mem);

    assert_eq!(trace_a, trace_b, "commit streams diverged between back-ends");
    assert_eq!(trace_a.len() as u64, a.retired);

    // Same committed stream ⇒ same architectural state under the oracle's
    // value semantics.
    let mut sa = ArchState::new();
    let mut sb = ArchState::new();
    for d in &trace_a {
        sa.apply(d);
    }
    for d in &trace_b {
        sb.apply(d);
    }
    assert_eq!(sa.diff(&sb), None);
    assert_eq!(a.retired, b.retired);
}

#[test]
fn backends_differ_only_in_timing() {
    // The banked hierarchy must actually change timing somewhere in the
    // space, or the proxy is vacuous; pick the paper's reference machine
    // where contention is known to bite.
    let cfg = armdse::core::DesignConfig::thunderx2();
    let w = build_workload(App::Stream, WorkloadScale::Small, cfg.core.vector_length);
    let a = simulate(&w.program, &cfg.core, &cfg.mem);
    let b = simulate_hardware_proxy(&w.program, &cfg.core, &cfg.mem);
    assert_eq!(a.retired, b.retired);
    assert_eq!(a.observed, b.observed);
    assert_ne!(a.cycles, b.cycles, "proxy back-end never affected timing");
}
