//! Architectural agreement between the two memory back-ends.
//!
//! [`Idealized`] (idealised hierarchy) and [`BankedProxy`]
//! (finite-banked hierarchy, the stand-in for the paper's physical
//! ThunderX2 in Table I) model the *same* machine at different timing
//! fidelity. Everything architectural — retired instruction count,
//! per-class retirement summary, validation verdict, and the committed
//! instruction stream itself — must be identical between them; only
//! cycle counts and memory-latency attribution may differ.

use armdse::core::space::ParamSpace;
use armdse::kernels::{build_workload, App, WorkloadScale};
use armdse::oracle::ArchState;
use armdse::simcore::{BankedProxy, Idealized, SimBackend, Traced};

#[test]
fn backends_agree_architecturally_on_every_app() {
    let space = ParamSpace::paper();
    for (i, &app) in App::ALL.iter().enumerate() {
        let cfg = space.sample_seeded(0x7A6E + i as u64);
        let w = build_workload(app, WorkloadScale::Tiny, cfg.core.vector_length);
        let a = Idealized.run(&w.program, &cfg.core, &cfg.mem);
        let b = BankedProxy.run(&w.program, &cfg.core, &cfg.mem);

        assert_eq!(a.retired, b.retired, "{app:?}: retired count diverged");
        assert_eq!(
            a.observed, b.observed,
            "{app:?}: retirement summary diverged"
        );
        assert_eq!(
            a.validated, b.validated,
            "{app:?}: validation verdict diverged"
        );
        assert!(a.validated, "{app:?}: run failed validation");
        assert!(!a.hit_cycle_limit && !b.hit_cycle_limit);
    }
}

#[test]
fn backends_commit_the_identical_instruction_stream() {
    let cfg = armdse::core::DesignConfig::thunderx2();
    let w = build_workload(App::Stream, WorkloadScale::Tiny, cfg.core.vector_length);
    let (a, trace_a) = Traced(Idealized).run(&w.program, &cfg.core, &cfg.mem);
    let (b, trace_b) = Traced(BankedProxy).run(&w.program, &cfg.core, &cfg.mem);

    assert_eq!(
        trace_a, trace_b,
        "commit streams diverged between back-ends"
    );
    assert_eq!(trace_a.len() as u64, a.retired);

    // Same committed stream ⇒ same architectural state under the oracle's
    // value semantics.
    let mut sa = ArchState::new();
    let mut sb = ArchState::new();
    for d in &trace_a {
        sa.apply(d);
    }
    for d in &trace_b {
        sb.apply(d);
    }
    assert_eq!(sa.diff(&sb), None);
    assert_eq!(a.retired, b.retired);
}

#[test]
fn traced_adapter_is_timing_transparent() {
    // Wrapping a backend in `Traced` must not perturb its statistics:
    // the trace is an observation channel, not a different model.
    let cfg = armdse::core::DesignConfig::thunderx2();
    let w = build_workload(App::TeaLeaf, WorkloadScale::Tiny, cfg.core.vector_length);
    let plain = BankedProxy.run(&w.program, &cfg.core, &cfg.mem);
    let (traced, trace) = Traced(BankedProxy).run(&w.program, &cfg.core, &cfg.mem);
    assert_eq!(plain, traced, "Traced adapter changed the statistics");
    assert_eq!(trace.len() as u64, plain.retired);
}

#[test]
fn backends_differ_only_in_timing() {
    // The banked hierarchy must actually change timing somewhere in the
    // space, or the proxy is vacuous; pick the paper's reference machine
    // where contention is known to bite.
    let cfg = armdse::core::DesignConfig::thunderx2();
    let w = build_workload(App::Stream, WorkloadScale::Small, cfg.core.vector_length);
    let a = Idealized.run(&w.program, &cfg.core, &cfg.mem);
    let b = BankedProxy.run(&w.program, &cfg.core, &cfg.mem);
    assert_eq!(a.retired, b.retired);
    assert_eq!(a.observed, b.observed);
    assert_ne!(a.cycles, b.cycles, "proxy back-end never affected timing");
}
