//! Golden determinism test for the metrics stream (the observability
//! mirror of `tests/engine_resume.rs`): the per-job counter CSV written
//! by a metrics-on campaign must be byte-identical at any worker-thread
//! count, and a campaign paused at a chunk boundary and resumed later
//! must append exactly the bytes the uninterrupted run would have
//! written. One metrics row is emitted per job — including
//! validation-discarded jobs — so the stream's shape depends only on
//! the plan, never on scheduling.

use armdse::core::engine::{Engine, Progress, RunControl, RunPlan};
use armdse::core::metrics::MetricsCsvSink;
use armdse::core::orchestrator::GenOptions;
use armdse::core::space::ParamSpace;
use armdse::core::DseDataset;
use armdse::kernels::{App, WorkloadScale};
use std::path::PathBuf;

const CONFIGS: usize = 10; // 10 configs x 4 apps = 40 jobs
const CHUNK: usize = 8; // 5 chunks

fn plan(threads: usize) -> RunPlan {
    let opts = GenOptions {
        configs: CONFIGS,
        scale: WorkloadScale::Tiny,
        seed: 0x00D_CAFE,
        threads,
        apps: App::ALL.to_vec(),
    };
    RunPlan::new(&ParamSpace::paper(), &opts)
        .expect("valid plan")
        .with_chunk_jobs(CHUNK)
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("armdse_metrics_det_{name}"))
}

/// Uninterrupted metrics CSV at the given thread count.
fn fresh_metrics(threads: usize) -> Vec<u8> {
    let path = tmp(&format!("fresh_{threads}.csv"));
    let mut msink = MetricsCsvSink::create(&path).unwrap();
    let mut data = DseDataset::default();
    let summary = Engine::idealized()
        .run_controlled(
            &plan(threads),
            &mut data,
            RunControl {
                metrics: Some(&mut msink),
                ..RunControl::default()
            },
        )
        .unwrap();
    assert!(summary.completed);
    assert_eq!(msink.rows_written(), CONFIGS * App::ALL.len());
    drop(msink);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

#[test]
fn metrics_csv_is_thread_count_invariant() {
    let one = fresh_metrics(1);
    let eight = fresh_metrics(8);
    assert_eq!(one, eight, "metrics bytes diverged between 1 and 8 threads");
}

#[test]
fn paused_and_resumed_metrics_csv_is_byte_identical() {
    let reference = fresh_metrics(2);

    let path = tmp("resumed.csv");
    let ckpt = tmp("resumed.ckpt");
    std::fs::remove_file(&ckpt).ok();

    // Phase 1: pause after two chunks (16 of 40 jobs).
    let mut msink = MetricsCsvSink::create(&path).unwrap();
    let mut data = DseDataset::default();
    let mut observer = |p: &Progress| p.jobs_done < 2 * CHUNK;
    let summary = Engine::idealized()
        .run_controlled(
            &plan(8),
            &mut data,
            RunControl {
                checkpoint: Some(&ckpt),
                resume: false,
                observer: Some(&mut observer),
                metrics: Some(&mut msink),
                ..RunControl::default()
            },
        )
        .unwrap();
    assert!(!summary.completed);
    assert_eq!(summary.jobs_done, 2 * CHUNK);
    drop(msink);

    // Phase 2: resume with a different thread count, appending.
    let mut msink = MetricsCsvSink::append(&path).unwrap();
    let summary = Engine::idealized()
        .run_controlled(
            &plan(1),
            &mut data,
            RunControl {
                checkpoint: Some(&ckpt),
                resume: true,
                metrics: Some(&mut msink),
                ..RunControl::default()
            },
        )
        .unwrap();
    assert!(summary.completed);
    assert_eq!(summary.resumed_from, 2 * CHUNK);
    drop(msink);

    let resumed = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&ckpt).ok();
    assert_eq!(
        reference, resumed,
        "paused+resumed metrics CSV diverged from the uninterrupted run"
    );
}
