//! Property-based tests over the core invariants (proptest).

use armdse::core::space::ParamSpace;
use armdse::core::DesignConfig;
use armdse::isa::instr::InstrTemplate;
use armdse::isa::kir::{AddrExpr, Kernel, Stmt};
use armdse::isa::op::OpClass;
use armdse::isa::{OpSummary, Program, Reg, TraceCursor};
use armdse::memsim::{split_lines, Cache, MemParams, MemoryModel};
use armdse::mltree::{DecisionTreeRegressor, Matrix, Regressor};
use proptest::prelude::*;

proptest! {
    /// Every seed produces a valid design point (constraint satisfaction).
    #[test]
    fn sampler_always_valid(seed in 0u64..100_000) {
        let cfg = ParamSpace::paper().sample_seeded(seed);
        prop_assert!(cfg.validate().is_ok());
    }

    /// Feature flattening round-trips for any sampled config.
    #[test]
    fn feature_vector_roundtrip(seed in 0u64..100_000) {
        let cfg = ParamSpace::paper().sample_seeded(seed);
        let back = DesignConfig::from_features(&cfg.to_features());
        prop_assert_eq!(cfg, back);
    }

    /// Line splitting conserves coverage: the union of the returned lines
    /// covers [addr, addr+bytes) and every line is aligned and in range.
    #[test]
    fn split_lines_covers_access(
        addr in 0u64..1_000_000,
        bytes in 1u32..4096,
        line_pow in 4u32..9, // 16..256
    ) {
        let line = 1u32 << line_pow;
        let lines: Vec<u64> = split_lines(addr, bytes, line).collect();
        prop_assert!(!lines.is_empty());
        // Aligned, consecutive, covering.
        for w in lines.windows(2) {
            prop_assert_eq!(w[1] - w[0], u64::from(line));
        }
        prop_assert_eq!(lines[0] % u64::from(line), 0);
        prop_assert!(lines[0] <= addr);
        let end = lines.last().unwrap() + u64::from(line);
        prop_assert!(end >= addr + u64::from(bytes));
        // Minimal: removing either end line would uncover bytes.
        prop_assert!(lines[0] + u64::from(line) > addr);
        prop_assert!(*lines.last().unwrap() < addr + u64::from(bytes));
    }

    /// LRU cache: after accessing any sequence, a probe of the most
    /// recently accessed line always hits, and valid lines never exceed
    /// capacity.
    #[test]
    fn cache_lru_properties(addrs in proptest::collection::vec(0u64..1u64<<20, 1..200)) {
        let mut c = Cache::new(4, 2, 64); // 4 KiB, 2-way
        for &a in &addrs {
            let line = a & !63;
            c.access(line, false);
            prop_assert!(c.probe(line), "just-accessed line must be resident");
            prop_assert!(c.valid_lines() <= c.capacity_lines());
        }
    }

    /// Memory model timing is causal and monotone: completions never
    /// precede issue, and a second access to the same line at a later
    /// time never completes earlier than the data's availability.
    #[test]
    fn hierarchy_completions_causal(addrs in proptest::collection::vec(0u64..1u64<<18, 1..100)) {
        let mut h = armdse::memsim::Hierarchy::new(MemParams::thunderx2());
        for (now, &a) in addrs.iter().enumerate() {
            let now = now as u64;
            let line = a & !63;
            let done = h.access(line, false, now);
            prop_assert!(done > now, "completion {done} must follow issue {now}");
        }
    }

    /// Tree predictions always lie within the hull of training targets.
    #[test]
    fn tree_prediction_hull(
        ys in proptest::collection::vec(0.0f64..1e6, 2..60),
        q in -100.0f64..100.0,
    ) {
        let rows: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows);
        let t = DecisionTreeRegressor::fit(&x, &ys);
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let p = t.predict_one(&[q]);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    /// The trace cursor retires exactly the analytic dynamic length for
    /// arbitrary (small) loop nests.
    #[test]
    fn cursor_length_matches_analytic(
        t1 in 1u64..6, t2 in 1u64..6, t3 in 1u64..6, tail in 0usize..4,
    ) {
        let body3 = vec![Stmt::Instr(InstrTemplate::compute(
            OpClass::FpAdd, &[Reg::fp(0)], &[Reg::fp(1)],
        ))];
        let mut body2 = vec![Stmt::repeat(t3, body3)];
        for _ in 0..tail {
            body2.push(Stmt::Instr(InstrTemplate::load(
                OpClass::Load, Reg::gp(2), &[Reg::gp(3)],
                AddrExpr::linear(0x1000, 1, 8), 8,
            )));
        }
        let k = Kernel::new("p", vec![Stmt::repeat(t1, vec![Stmt::repeat(t2, body2)])]);
        let p = Program::lower(&k);
        let traced = TraceCursor::new(&p).count() as u64;
        prop_assert_eq!(traced, p.dynamic_len());
        // And the analytic summary matches the traced one.
        let mut observed = OpSummary::default();
        for d in TraceCursor::new(&p) {
            observed.record(d.op, d.mem.map_or(0, |m| u64::from(m.bytes)), d.mem.map(|m| m.kind));
        }
        prop_assert_eq!(observed, OpSummary::of(&p));
    }

    /// Simulation conserves instructions for arbitrary sampled configs:
    /// retired == analytic count, and the run validates.
    #[test]
    fn simulation_conserves_instructions(seed in 0u64..400) {
        let cfg = ParamSpace::paper().sample_seeded(seed);
        let w = armdse::kernels::build_workload(
            armdse::kernels::App::TeaLeaf,
            armdse::kernels::WorkloadScale::Tiny,
            cfg.core.vector_length,
        );
        let s = armdse::simcore::simulate(&w.program, &cfg.core, &cfg.mem);
        prop_assert!(s.validated, "seed {seed} failed validation: {s:?}");
        prop_assert_eq!(s.retired, w.summary.total());
    }
}
