//! Property-style tests over the core invariants.
//!
//! Formerly `proptest`-based; rewritten as deterministic seeded sweeps
//! on `armdse-rng` so the whole workspace tests offline with zero
//! external dependencies. Each test draws its inputs from a fixed
//! xoshiro256++ stream, so every run checks the identical case set —
//! failures are reproducible by seed, and there is no shrinking phase
//! to depend on.

use armdse::core::space::ParamSpace;
use armdse::core::DesignConfig;
use armdse::isa::instr::InstrTemplate;
use armdse::isa::kir::{AddrExpr, Kernel, Stmt};
use armdse::isa::op::OpClass;
use armdse::isa::{OpSummary, Program, Reg, TraceCursor};
use armdse::memsim::{split_lines, Cache, MemParams, MemoryModel};
use armdse::mltree::{DecisionTreeRegressor, Matrix, Regressor};
use armdse::rng::{Rng, SeedableRng, Xoshiro256pp};

/// Deterministic input stream for one property; sweeps `cases` draws.
fn sweep(seed: u64, cases: usize, mut body: impl FnMut(&mut Xoshiro256pp)) {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    for _ in 0..cases {
        body(&mut rng);
    }
}

/// Every seed produces a valid design point (constraint satisfaction).
#[test]
fn sampler_always_valid() {
    let space = ParamSpace::paper();
    sweep(0xA11D, 256, |rng| {
        let seed = rng.gen_range(0..100_000u64);
        let cfg = space.sample_seeded(seed);
        cfg.validate()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    });
}

/// Feature flattening round-trips for any sampled config.
#[test]
fn feature_vector_roundtrip() {
    let space = ParamSpace::paper();
    sweep(0xF17, 256, |rng| {
        let seed = rng.gen_range(0..100_000u64);
        let cfg = space.sample_seeded(seed);
        let back = DesignConfig::from_features(&cfg.to_features());
        assert_eq!(cfg, back, "seed {seed}");
    });
}

/// Line splitting conserves coverage: the union of the returned lines
/// covers [addr, addr+bytes) and every line is aligned and in range.
#[test]
fn split_lines_covers_access() {
    sweep(0x5117, 512, |rng| {
        let addr = rng.gen_range(0..1_000_000u64);
        let bytes = rng.gen_range(1..4096u32);
        let line = 1u32 << rng.gen_range(4..9u32); // 16..256
        let lines: Vec<u64> = split_lines(addr, bytes, line).collect();
        assert!(!lines.is_empty());
        // Aligned, consecutive, covering.
        for w in lines.windows(2) {
            assert_eq!(w[1] - w[0], u64::from(line));
        }
        assert_eq!(lines[0] % u64::from(line), 0);
        assert!(lines[0] <= addr);
        let end = lines.last().unwrap() + u64::from(line);
        assert!(end >= addr + u64::from(bytes));
        // Minimal: removing either end line would uncover bytes.
        assert!(lines[0] + u64::from(line) > addr);
        assert!(*lines.last().unwrap() < addr + u64::from(bytes));
    });
}

/// LRU cache: after accessing any sequence, a probe of the most
/// recently accessed line always hits, and valid lines never exceed
/// capacity.
#[test]
fn cache_lru_properties() {
    sweep(0xCAC4E, 64, |rng| {
        let mut c = Cache::new(4, 2, 64); // 4 KiB, 2-way
        let n = rng.gen_range(1..200usize);
        for _ in 0..n {
            let a = rng.gen_range(0..1u64 << 20);
            let line = a & !63;
            c.access(line, false);
            assert!(c.probe(line), "just-accessed line must be resident");
            assert!(c.valid_lines() <= c.capacity_lines());
        }
    });
}

/// Memory model timing is causal and monotone: completions never
/// precede issue, and a second access to the same line at a later
/// time never completes earlier than the data's availability.
#[test]
fn hierarchy_completions_causal() {
    sweep(0x4E1, 64, |rng| {
        let mut h = armdse::memsim::Hierarchy::new(MemParams::thunderx2());
        let n = rng.gen_range(1..100usize);
        for now in 0..n as u64 {
            let a = rng.gen_range(0..1u64 << 18);
            let line = a & !63;
            let done = h.access(line, false, now);
            assert!(done > now, "completion {done} must follow issue {now}");
        }
    });
}

/// Tree predictions always lie within the hull of training targets.
#[test]
fn tree_prediction_hull() {
    sweep(0x7EE, 128, |rng| {
        let n = rng.gen_range(2..60usize);
        let ys: Vec<f64> = (0..n).map(|_| rng.gen_f64() * 1e6).collect();
        let q = rng.gen_f64() * 200.0 - 100.0;
        let rows: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows);
        let t = DecisionTreeRegressor::fit(&x, &ys);
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let p = t.predict_one(&[q]);
        assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    });
}

/// The trace cursor retires exactly the analytic dynamic length for
/// arbitrary (small) loop nests.
#[test]
fn cursor_length_matches_analytic() {
    sweep(0xC5, 128, |rng| {
        let t1 = rng.gen_range(1..6u64);
        let t2 = rng.gen_range(1..6u64);
        let t3 = rng.gen_range(1..6u64);
        let tail = rng.gen_range(0..4usize);
        let body3 = vec![Stmt::Instr(InstrTemplate::compute(
            OpClass::FpAdd,
            &[Reg::fp(0)],
            &[Reg::fp(1)],
        ))];
        let mut body2 = vec![Stmt::repeat(t3, body3)];
        for _ in 0..tail {
            body2.push(Stmt::Instr(InstrTemplate::load(
                OpClass::Load,
                Reg::gp(2),
                &[Reg::gp(3)],
                AddrExpr::linear(0x1000, 1, 8),
                8,
            )));
        }
        let k = Kernel::new("p", vec![Stmt::repeat(t1, vec![Stmt::repeat(t2, body2)])]);
        let p = Program::lower(&k);
        let traced = TraceCursor::new(&p).count() as u64;
        assert_eq!(traced, p.dynamic_len());
        // And the analytic summary matches the traced one.
        let mut observed = OpSummary::default();
        for d in TraceCursor::new(&p) {
            observed.record(
                d.op,
                d.mem.map_or(0, |m| u64::from(m.bytes)),
                d.mem.map(|m| m.kind),
            );
        }
        assert_eq!(observed, OpSummary::of(&p));
    });
}

/// Simulation conserves instructions for arbitrary sampled configs:
/// retired == analytic count, and the run validates.
#[test]
fn simulation_conserves_instructions() {
    let space = ParamSpace::paper();
    sweep(0x51A1, 48, |rng| {
        let seed = rng.gen_range(0..400u64);
        let cfg = space.sample_seeded(seed);
        let w = armdse::kernels::build_workload(
            armdse::kernels::App::TeaLeaf,
            armdse::kernels::WorkloadScale::Tiny,
            cfg.core.vector_length,
        );
        let s = armdse::simcore::simulate(&w.program, &cfg.core, &cfg.mem);
        assert!(s.validated, "seed {seed} failed validation: {s:?}");
        assert_eq!(s.retired, w.summary.total());
    });
}
