//! End-to-end wire-level tests of the job server (docs/SERVER.md): a
//! plan submitted over HTTP must stream back row bytes identical to a
//! direct `Engine::run` of the same plan — while the job is still
//! running, at 1 and 8 worker threads, and after a pause/resume cycle
//! across a full server restart. Error responses carry the documented
//! status codes (400 / 404 / 405 / 409).

use armdse::core::jobstore::JobStatus;
use armdse::core::space::ParamSpace;
use armdse::core::{CsvSink, JobSpec, JobState};
use armdse::kernels::{App, WorkloadScale};
use armdse::server::{client, Server, ServerConfig};
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

fn tmp(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("armdse_server_http_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec(configs: usize, seed: u64, threads: usize) -> JobSpec {
    JobSpec {
        configs,
        scale: WorkloadScale::Tiny,
        seed,
        threads,
        apps: App::ALL.to_vec(),
        chunk_jobs: 8,
        ..JobSpec::default()
    }
}

fn direct_csv(spec: &JobSpec, dir: &Path, tag: &str) -> Vec<u8> {
    let plan = spec.plan(&ParamSpace::paper()).unwrap();
    let path = dir.join(format!("direct_{tag}.csv"));
    let mut sink = CsvSink::create(&path).unwrap();
    let summary = spec.engine().run(&plan, &mut sink).unwrap();
    assert!(summary.completed);
    drop(sink);
    std::fs::read(&path).unwrap()
}

/// Bind on an ephemeral port and serve on a background thread.
fn start(jobs_dir: &Path, runners: usize) -> (String, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs_dir: jobs_dir.to_path_buf(),
        runners,
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.serve());
    (addr, handle)
}

fn stop(addr: &str, handle: JoinHandle<std::io::Result<()>>) {
    let resp = client::request(addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(resp.status, 200);
    handle.join().unwrap().unwrap();
}

fn submit(addr: &str, spec: &JobSpec) -> u64 {
    let resp = client::request(addr, "POST", "/jobs", Some(&spec.to_json())).unwrap();
    assert_eq!(resp.status, 201, "submit failed: {}", resp.text());
    JobStatus::from_json(&resp.text()).unwrap().id
}

fn status(addr: &str, id: u64) -> JobStatus {
    let resp = client::request(addr, "GET", &format!("/jobs/{id}"), None).unwrap();
    assert_eq!(resp.status, 200, "status failed: {}", resp.text());
    JobStatus::from_json(&resp.text()).unwrap()
}

fn stream_rows(addr: &str, id: u64) -> Vec<u8> {
    let mut streamed = Vec::new();
    let code = client::stream(
        addr,
        "GET",
        &format!("/jobs/{id}/rows"),
        None,
        &mut |chunk| {
            streamed.extend_from_slice(chunk);
            Ok(())
        },
    )
    .unwrap();
    assert_eq!(code, 200);
    streamed
}

#[test]
fn submitted_plan_streams_engine_identical_bytes_at_1_and_8_threads() {
    let dir = tmp("stream");
    let (addr, handle) = start(&dir.join("jobs"), 2);
    for threads in [1usize, 8] {
        let s = spec(10, 0xFACE ^ threads as u64, threads);
        let id = submit(&addr, &s);
        // Open the stream immediately — it follows the CSV live, at
        // chunk cadence, and terminates when the job finishes.
        let streamed = stream_rows(&addr, id);
        let st = status(&addr, id);
        assert_eq!(st.state, JobState::Done, "job {id}: {:?}", st.error);
        assert_eq!(
            streamed,
            direct_csv(&s, &dir, &format!("t{threads}")),
            "streamed bytes diverged from direct Engine::run at {threads} threads"
        );
    }
    stop(&addr, handle);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pause_resume_across_server_restart_streams_identical_bytes() {
    let dir = tmp("restart");
    let jobs_dir = dir.join("jobs");
    let (addr, handle) = start(&jobs_dir, 1);

    // A long campaign with one job per chunk: plenty of boundaries to
    // pause between.
    let mut s = spec(60, 0x5EED_0005, 2);
    s.apps = vec![App::Stream];
    s.chunk_jobs = 1;
    let id = submit(&addr, &s);

    // Wait for real progress, then pause mid-campaign.
    loop {
        let st = status(&addr, id);
        assert!(!st.state.is_terminal(), "job finished before pause");
        if st.state == JobState::Running && st.jobs_done > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let resp = client::request(&addr, "POST", &format!("/jobs/{id}/pause"), None).unwrap();
    assert_eq!(resp.status, 200, "pause failed: {}", resp.text());

    // Full restart: shut the server down (joins runners, persists job
    // state) and bind a fresh one on the same store.
    stop(&addr, handle);
    let (addr, handle) = start(&jobs_dir, 1);
    let st = status(&addr, id);
    assert_eq!(st.state, JobState::Paused, "job must reopen paused");
    assert!(
        st.jobs_done > 0 && st.jobs_done < st.total_jobs,
        "restart must preserve mid-campaign progress (done {}/{})",
        st.jobs_done,
        st.total_jobs
    );

    let resp = client::request(&addr, "POST", &format!("/jobs/{id}/resume"), None).unwrap();
    assert_eq!(resp.status, 200, "resume failed: {}", resp.text());
    let streamed = stream_rows(&addr, id);
    let st = status(&addr, id);
    assert_eq!(st.state, JobState::Done, "job {id}: {:?}", st.error);
    assert_eq!(
        streamed,
        direct_csv(&s, &dir, "restart"),
        "pause/restart/resume must not change a single output byte"
    );
    stop(&addr, handle);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn error_responses_carry_documented_status_codes() {
    let dir = tmp("errors");
    let (addr, handle) = start(&dir.join("jobs"), 1);

    // 400: not JSON / unknown key / missing configs.
    for body in [
        "not json",
        "{\"bogus\": 1}",
        "{\"seed\": 3}",
        "{\"configs\": 0}",
    ] {
        let resp = client::request(&addr, "POST", "/jobs", Some(body)).unwrap();
        assert_eq!(resp.status, 400, "body {body:?} → {}", resp.text());
        assert!(resp.text().contains("\"error\""));
    }

    // 404: unknown job id, unknown endpoint, metrics on a metrics-less job.
    for (method, path) in [
        ("GET", "/jobs/999"),
        ("POST", "/jobs/999/pause"),
        ("GET", "/nope"),
    ] {
        let resp = client::request(&addr, method, path, None).unwrap();
        assert_eq!(resp.status, 404, "{method} {path} → {}", resp.text());
    }

    // 405: wrong method on a known resource.
    let resp = client::request(&addr, "DELETE", "/jobs", None).unwrap();
    assert_eq!(resp.status, 405);

    // 409: pausing a job that already finished is a bad transition.
    let mut s = spec(1, 0x0E44, 1);
    s.apps = vec![App::Stream];
    let id = submit(&addr, &s);
    loop {
        let st = status(&addr, id);
        if st.state.is_terminal() {
            assert_eq!(st.state, JobState::Done);
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let resp = client::request(&addr, "POST", &format!("/jobs/{id}/pause"), None).unwrap();
    assert_eq!(resp.status, 409, "pausing a done job → {}", resp.text());
    let resp = client::request(&addr, "GET", &format!("/jobs/{id}/metrics"), None).unwrap();
    assert_eq!(
        resp.status,
        404,
        "metrics on a metrics-less job → {}",
        resp.text()
    );

    stop(&addr, handle);
    std::fs::remove_dir_all(&dir).ok();
}
