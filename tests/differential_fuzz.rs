//! Differential fuzzing lane: random KIR programs, interpreter vs. core.
//!
//! Each program is run through three independent machines — the oracle's
//! tree-walking interpreter, a straight-line trace replay of the lowered
//! program, and the out-of-order pipeline (every 4th program on the
//! banked hardware-proxy hierarchy) — and their architectural state and
//! retired-operation counts must agree exactly. This campaign is the
//! repo's substitute for the paper's Table I validation against physical
//! ThunderX2/A64FX hardware: instead of two physical machines, we cross
//! check three independently implemented semantics.
//!
//! The campaign is fixed-seed and fully deterministic. Override the
//! program count with `ARMDSE_FUZZ_PROGRAMS=N` (CI smoke uses a smaller
//! N; the acceptance campaign is the 200-program default).

use armdse::oracle::{fuzz, fuzz_with, FuzzConfig};
use armdse::simcore::{Idealized, Memoized, SimBackend};

fn campaign_config() -> FuzzConfig {
    let mut cfg = FuzzConfig::default();
    if let Ok(n) = std::env::var("ARMDSE_FUZZ_PROGRAMS") {
        cfg.programs = n.parse().expect("ARMDSE_FUZZ_PROGRAMS must be an integer");
    }
    cfg
}

#[test]
fn differential_fuzz_campaign_is_clean() {
    let cfg = campaign_config();
    let report = fuzz(&cfg);
    assert_eq!(report.programs, cfg.programs);
    assert!(
        report.ok(),
        "differential fuzz found {} divergence(s); first: program #{} on {:?}: {}",
        report.failures.len(),
        report.failures[0].index,
        report.failures[0].backend,
        report.failures[0].error,
    );
}

/// Reuse lane: the same fixed-seed program population, every program
/// forced through the interval-memoizing backend. `check_kernel`
/// cross-checks the backend's cached entry points (`run`,
/// `run_with_metrics`) against its own uncached trace (`run_traced`)
/// and the reference interpreter, so any interval-fingerprint collision
/// or snapshot-restore unsoundness surfaces as a divergence. A short
/// interval length maximises the number of interval boundaries (and
/// therefore snapshot/restore transitions) each program crosses.
#[test]
fn differential_fuzz_reuse_lane_is_clean() {
    let cfg = campaign_config();
    let backend = Memoized::with_interval_len(Idealized, 64);
    let report = fuzz_with(&cfg, &backend);
    assert_eq!(report.programs, cfg.programs);
    assert!(
        report.ok(),
        "reuse-lane fuzz found {} divergence(s); first: program #{} on {:?}: {}",
        report.failures.len(),
        report.failures[0].index,
        report.failures[0].backend,
        report.failures[0].error,
    );
    // The campaign must actually have exercised the cache: every program
    // runs the plain and the metrics chain, so lookups dominate.
    let rs = backend
        .reuse_stats()
        .expect("memoized backend reports stats");
    assert!(
        rs.misses > 0 && rs.insertions > 0,
        "reuse lane never touched the interval cache: {rs:?}"
    );
}
