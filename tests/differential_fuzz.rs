//! Differential fuzzing lane: random KIR programs, interpreter vs. core.
//!
//! Each program is run through three independent machines — the oracle's
//! tree-walking interpreter, a straight-line trace replay of the lowered
//! program, and the out-of-order pipeline (every 4th program on the
//! banked hardware-proxy hierarchy) — and their architectural state and
//! retired-operation counts must agree exactly. This campaign is the
//! repo's substitute for the paper's Table I validation against physical
//! ThunderX2/A64FX hardware: instead of two physical machines, we cross
//! check three independently implemented semantics.
//!
//! The campaign is fixed-seed and fully deterministic. Override the
//! program count with `ARMDSE_FUZZ_PROGRAMS=N` (CI smoke uses a smaller
//! N; the acceptance campaign is the 200-program default).

use armdse::oracle::{fuzz, FuzzConfig};

#[test]
fn differential_fuzz_campaign_is_clean() {
    let mut cfg = FuzzConfig::default();
    if let Ok(n) = std::env::var("ARMDSE_FUZZ_PROGRAMS") {
        cfg.programs = n.parse().expect("ARMDSE_FUZZ_PROGRAMS must be an integer");
    }
    let report = fuzz(&cfg);
    assert_eq!(report.programs, cfg.programs);
    assert!(
        report.ok(),
        "differential fuzz found {} divergence(s); first: program #{} on {:?}: {}",
        report.failures.len(),
        report.failures[0].index,
        report.failures[0].backend,
        report.failures[0].error,
    );
}
