//! Reuse-equivalence proof harness: the interval-memoizing backend must
//! be **bit-identical** to the plain backend — statistics, metrics
//! counters, and emitted dataset CSV bytes — in every cache state (cold,
//! warm, and polluted by a different campaign) and at any thread count.
//!
//! This is the memoization analogue of `tests/determinism.rs`: the paper
//! pipeline's numbers must never depend on what happens to be cached.

use armdse::core::orchestrator::GenOptions;
use armdse::core::space::ParamSpace;
use armdse::core::{CsvSink, Engine, RunPlan};
use armdse::kernels::{App, WorkloadScale};
use armdse::simcore::{BankedProxy, Counters, Idealized, Memoized, SimBackend, SimStats};

/// A small campaign over the paper's ThunderX2-anchored space: every
/// config is a constrained sample around the baseline's parameter
/// ranges, exactly what dataset generation simulates.
fn plan(configs: usize, threads: usize) -> RunPlan {
    let opts = GenOptions {
        configs,
        scale: WorkloadScale::Tiny,
        seed: 0x7D2_2024,
        threads,
        apps: vec![App::Stream, App::TeaLeaf],
    };
    RunPlan::new(&ParamSpace::paper(), &opts).unwrap()
}

/// Run `plan` on `engine` and return the emitted CSV bytes.
fn csv_bytes(engine: &Engine, plan: &RunPlan, tag: &str) -> Vec<u8> {
    let path = std::env::temp_dir().join(format!("armdse_reuse_eq_{tag}.csv"));
    let mut sink = CsvSink::create(&path).unwrap();
    engine.run(plan, &mut sink).unwrap();
    drop(sink);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

/// Cold cache, warm cache, and cross-campaign-polluted cache all emit
/// the reference CSV byte-for-byte, at 1 and at 8 worker threads.
#[test]
fn dataset_csv_bytes_identical_in_every_cache_state() {
    for threads in [1usize, 8] {
        let p = plan(5, threads);
        let want = csv_bytes(&Engine::idealized(), &p, &format!("ref_{threads}"));
        let e = Engine::memoized(256);
        let cold = csv_bytes(&e, &p, &format!("cold_{threads}"));
        assert_eq!(cold, want, "threads={threads}: cold cache diverged");
        let warm = csv_bytes(&e, &p, &format!("warm_{threads}"));
        assert_eq!(warm, want, "threads={threads}: warm cache diverged");
        let rs = e.backend().reuse_stats().unwrap();
        assert!(rs.hits > 0, "threads={threads}: warm pass must hit");
        // Pollute the cache with a different campaign, then re-emit.
        let other = GenOptions {
            configs: 4,
            scale: WorkloadScale::Tiny,
            seed: 0xBAD_CAFE,
            threads,
            apps: vec![App::MiniBude, App::MiniSweep],
        };
        let other_plan = RunPlan::new(&ParamSpace::paper(), &other).unwrap();
        e.run(&other_plan, &mut armdse::core::DseDataset::default())
            .unwrap();
        let polluted = csv_bytes(&e, &p, &format!("cross_{threads}"));
        assert_eq!(polluted, want, "threads={threads}: polluted cache diverged");
    }
}

/// Per-design-point equality of the raw statistics and metrics counters
/// across a seeded subspace grid, through a cold and a warm cache.
#[test]
fn stats_and_counters_bit_identical_on_subspace_grid() {
    let space = ParamSpace::paper();
    let core_baseline = armdse::simcore::CoreParams::thunderx2();
    let scale = WorkloadScale::Tiny;
    let plain = Engine::idealized();
    let configs: Vec<_> = (0..6u64)
        .map(|i| space.sample_seeded(0x0005_EED0 + i))
        .collect();
    for (backend, cached) in [
        (
            Box::new(Idealized) as Box<dyn SimBackend>,
            Box::new(Memoized::with_interval_len(Idealized, 128)) as Box<dyn SimBackend>,
        ),
        (
            Box::new(BankedProxy),
            Box::new(Memoized::with_interval_len(BankedProxy, 128)),
        ),
    ] {
        for app in [App::Stream, App::MiniSweep] {
            let w = plain.workload(app, scale, core_baseline.vector_length);
            for cfg in &configs {
                let w_cfg = plain.workload(app, scale, cfg.core.vector_length);
                for (program, core, mem) in [
                    (
                        &w.program,
                        &core_baseline,
                        &armdse::memsim::MemParams::thunderx2(),
                    ),
                    (&w_cfg.program, &cfg.core, &cfg.mem),
                ] {
                    let want: SimStats = backend.run(program, core, mem);
                    let (want_m, want_c): (SimStats, Counters) =
                        backend.run_with_metrics(program, core, mem);
                    // Cold, then warm.
                    for pass in ["cold", "warm"] {
                        let got = cached.run(program, core, mem);
                        assert_eq!(got, want, "{} {app:?} {pass}", backend.name());
                        let (gm, gc) = cached.run_with_metrics(program, core, mem);
                        assert_eq!(gm, want_m, "{} {app:?} {pass} metrics", backend.name());
                        assert_eq!(gc, want_c, "{} {app:?} {pass} counters", backend.name());
                    }
                }
            }
            let rs = cached.reuse_stats().unwrap();
            assert!(rs.hits > 0, "{}: warm passes must hit", backend.name());
        }
    }
}
