//! Session/scheduler-layer integration tests (the DSE-as-a-service
//! guarantees below the HTTP layer):
//!
//! * jobs executed by the [`JobScheduler`] write CSVs byte-identical to
//!   a direct `Engine::run` of the same plan, even when two jobs with
//!   different seeds run concurrently on shared runner threads;
//! * cancelling a running job mid-campaign stops at a chunk boundary
//!   and leaves a loadable checkpoint consistent with the CSV;
//! * priority ties are broken deterministically by job id (submission
//!   order), pinned via the store's `started_seq` stamps.

use armdse::core::engine::Checkpoint;
use armdse::core::space::ParamSpace;
use armdse::core::{CsvSink, JobScheduler, JobSpec, JobState};
use armdse::kernels::{App, WorkloadScale};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("armdse_server_jobs_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec(configs: usize, seed: u64, threads: usize) -> JobSpec {
    JobSpec {
        configs,
        scale: WorkloadScale::Tiny,
        seed,
        threads,
        apps: App::ALL.to_vec(),
        chunk_jobs: 8,
        ..JobSpec::default()
    }
}

/// Reference bytes: a direct, uninterrupted `Engine::run` of the same
/// plan the job executes (own engine at the spec's fidelity).
fn direct_csv(spec: &JobSpec, dir: &Path, tag: &str) -> Vec<u8> {
    let plan = spec.plan(&ParamSpace::paper()).unwrap();
    let path = dir.join(format!("direct_{tag}.csv"));
    let mut sink = CsvSink::create(&path).unwrap();
    let summary = spec.engine().run(&plan, &mut sink).unwrap();
    assert!(summary.completed);
    drop(sink);
    std::fs::read(&path).unwrap()
}

#[test]
fn concurrent_jobs_with_different_seeds_match_serial_runs() {
    let dir = tmp("concurrent");
    let sched = JobScheduler::open(&dir.join("jobs"), 2).unwrap();
    // Different seeds AND different thread counts: isolation must hold
    // regardless of how each job shards its config range.
    let spec_a = spec(10, 0xA11C_E001, 1);
    let spec_b = spec(10, 0xB0B0_0002, 8);
    let a = sched.submit(spec_a.clone()).unwrap();
    let b = sched.submit(spec_b.clone()).unwrap();
    let st_a = a.wait_terminal();
    let st_b = b.wait_terminal();
    assert_eq!(st_a.state, JobState::Done, "job a: {:?}", st_a.error);
    assert_eq!(st_b.state, JobState::Done, "job b: {:?}", st_b.error);
    assert_eq!(st_a.jobs_done, st_a.total_jobs);
    assert_eq!(
        std::fs::read(a.csv_path()).unwrap(),
        direct_csv(&spec_a, &dir, "a"),
        "concurrent job a diverged from its serial reference run"
    );
    assert_eq!(
        std::fs::read(b.csv_path()).unwrap(),
        direct_csv(&spec_b, &dir, "b"),
        "concurrent job b diverged from its serial reference run"
    );
    sched.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cancel_mid_campaign_leaves_loadable_checkpoint() {
    let dir = tmp("cancel");
    let sched = JobScheduler::open(&dir.join("jobs"), 1).unwrap();
    // One job per chunk: many checkpoint boundaries to cancel between.
    let mut s = spec(60, 0xDEAD_BEEF, 2);
    s.apps = vec![App::Stream];
    s.chunk_jobs = 1;
    let job = sched.submit(s).unwrap();

    // Wait for real progress, then cancel mid-campaign.
    let mut st = job.status();
    while st.jobs_done == 0 || st.state != JobState::Running {
        assert!(
            !st.state.is_terminal(),
            "job finished before the test could cancel it"
        );
        st = job.wait_change(st.version, Duration::from_millis(200));
    }
    sched.cancel(job.id()).unwrap();
    let fin = job.wait_terminal();
    assert_eq!(fin.state, JobState::Cancelled);
    assert!(
        fin.jobs_done > 0 && fin.jobs_done < fin.total_jobs,
        "cancel should land mid-campaign (done {}/{})",
        fin.jobs_done,
        fin.total_jobs
    );

    // The checkpoint on disk is loadable and consistent with both the
    // final status and the CSV written so far.
    let ckpt = Checkpoint::load(&job.ckpt_path()).unwrap();
    assert_eq!(ckpt.jobs_done, fin.jobs_done);
    assert_eq!(ckpt.rows, fin.rows);
    assert_eq!(ckpt.discarded, fin.discarded);
    assert_eq!(ckpt.rows + ckpt.discarded, ckpt.jobs_done);
    let csv = std::fs::read_to_string(job.csv_path()).unwrap();
    assert_eq!(
        csv.lines().count(),
        ckpt.rows + 1, // header line
        "CSV row count must match the checkpoint"
    );
    sched.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn priority_ties_run_in_job_id_order() {
    let dir = tmp("priority");
    // No runners yet: all five jobs are queued before anything runs,
    // then a single runner drains the queue in priority order.
    let sched = JobScheduler::open(&dir.join("jobs"), 0).unwrap();
    let jobs: Vec<_> = [0i64, 5, 0, 5, -1]
        .iter()
        .map(|&priority| {
            let mut s = spec(1, 0x7E57, 1);
            s.apps = vec![App::Stream];
            s.priority = priority;
            sched.submit(s).unwrap()
        })
        .collect();
    sched.add_runners(1);
    let statuses: Vec<_> = jobs.iter().map(|j| j.wait_terminal()).collect();
    for st in &statuses {
        assert_eq!(st.state, JobState::Done, "job {}: {:?}", st.id, st.error);
    }
    let seq = |i: usize| statuses[i].started_seq.expect("job never started");
    // Expected order: priority 5 (ids ascending), then 0 (ids
    // ascending), then -1 — submission order breaks every tie.
    assert!(seq(1) < seq(3), "priority-5 tie must run in id order");
    assert!(seq(3) < seq(0), "priority 5 must run before priority 0");
    assert!(seq(0) < seq(2), "priority-0 tie must run in id order");
    assert!(seq(2) < seq(4), "priority -1 must run last");
    sched.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
