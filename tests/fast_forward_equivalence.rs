//! The idle-cycle fast-forward is timing-exact: turning it off must not
//! change a single statistic, counter, or emitted CSV byte.
//!
//! The fast-forward (`Pipeline::try_fast_forward`) skips cycles where
//! every pipeline stage is provably stalled, bulk-advancing per-cycle
//! stall accounting instead of stepping. Its legality argument (see
//! DESIGN.md) claims the skipped cycles would have changed nothing but
//! those counters — this suite pins that claim across the same six
//! crippled design points `metrics_accounting.rs` uses (each starving a
//! different structure, so each exercises a different idle shape) and a
//! full metrics-on campaign.
//!
//! The toggle is process-wide, so every comparison lives in this one
//! `#[test]` (integration tests within a binary may run concurrently;
//! a second test flipping the toggle would race).

use armdse::core::engine::{CsvSink, Engine, RunControl, RunPlan};
use armdse::core::metrics::MetricsRow;
use armdse::core::orchestrator::GenOptions;
use armdse::core::space::ParamSpace;
use armdse::core::DesignConfig;
use armdse::kernels::{App, WorkloadScale};
use armdse::memsim::MemParams;
use armdse::simcore::CoreParams;

/// The six crippled design points from tests/metrics_accounting.rs:
/// each starves a different structure so idle cycles arise from a
/// different combination of blocked stages.
fn crippled_points() -> Vec<(&'static str, CoreParams, MemParams)> {
    let mem = MemParams::thunderx2();
    let mut tiny_rob = CoreParams::thunderx2();
    tiny_rob.rob_size = 8;
    let mut tiny_queues = CoreParams::thunderx2();
    tiny_queues.load_queue = 4;
    tiny_queues.store_queue = 4;
    let mut narrow = CoreParams::thunderx2();
    narrow.commit_width = 1;
    narrow.frontend_width = 1;
    let mut few_regs = CoreParams::thunderx2();
    few_regs.gp_regs = 40;
    few_regs.fp_regs = 40;
    let mut choked_mem = CoreParams::thunderx2();
    choked_mem.mem_requests_per_cycle = 1;
    choked_mem.loads_per_cycle = 1;
    choked_mem.stores_per_cycle = 1;
    let mut slow_mem = MemParams::thunderx2();
    slow_mem.ram_access_ns = 500.0;
    vec![
        ("tiny-rob", tiny_rob, mem),
        ("tiny-lsq", tiny_queues, mem),
        ("narrow", narrow, mem),
        ("few-regs", few_regs, mem),
        ("choked-mem", choked_mem, mem),
        ("slow-ram", CoreParams::thunderx2(), slow_mem),
    ]
}

fn campaign_csv_and_metrics(engine: &Engine, tag: &str) -> (Vec<u8>, Vec<MetricsRow>) {
    let opts = GenOptions {
        configs: 6,
        scale: WorkloadScale::Tiny,
        seed: 0xFFE4_2026,
        threads: 2,
        apps: App::ALL.to_vec(),
    };
    let plan = RunPlan::new(&ParamSpace::paper(), &opts)
        .unwrap()
        .with_chunk_jobs(7);
    let path = std::env::temp_dir().join(format!("armdse_ff_{tag}.csv"));
    let mut sink = CsvSink::create(&path).unwrap();
    let mut metrics: Vec<MetricsRow> = Vec::new();
    engine
        .run_controlled(
            &plan,
            &mut sink,
            RunControl {
                metrics: Some(&mut metrics),
                ..RunControl::default()
            },
        )
        .unwrap();
    drop(sink);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    (bytes, metrics)
}

#[test]
fn fast_forward_changes_nothing() {
    let engine = Engine::idealized();

    // Per-design-point equivalence: SimStats and Counters must match
    // bit-for-bit with fast-forward on vs. off, for every app.
    for (tag, core, mem) in crippled_points() {
        let cfg = DesignConfig { core, mem };
        for app in App::ALL {
            Engine::set_fast_forward(true);
            let (stats_on, counters_on) =
                engine.simulate_config_metrics(app, WorkloadScale::Tiny, &cfg);
            let plain_on = engine.simulate_config(app, WorkloadScale::Tiny, &cfg);
            Engine::set_fast_forward(false);
            let (stats_off, counters_off) =
                engine.simulate_config_metrics(app, WorkloadScale::Tiny, &cfg);
            let plain_off = engine.simulate_config(app, WorkloadScale::Tiny, &cfg);
            Engine::set_fast_forward(true);

            assert_eq!(stats_on, stats_off, "{tag}/{app:?}: SimStats diverged");
            assert_eq!(
                counters_on, counters_off,
                "{tag}/{app:?}: Counters diverged"
            );
            assert_eq!(
                plain_on, plain_off,
                "{tag}/{app:?}: metrics-off SimStats diverged"
            );
            assert!(counters_on.conserves(), "{tag}/{app:?}: attribution leak");
        }
    }

    // Campaign-level equivalence: dataset CSV bytes and every metrics
    // row identical with fast-forward on vs. off.
    Engine::set_fast_forward(true);
    let (csv_on, metrics_on) = campaign_csv_and_metrics(&engine, "on");
    Engine::set_fast_forward(false);
    let (csv_off, metrics_off) = campaign_csv_and_metrics(&engine, "off");
    Engine::set_fast_forward(true);
    assert_eq!(csv_on, csv_off, "fast-forward changed dataset CSV bytes");
    assert_eq!(metrics_on, metrics_off, "metrics rows diverged");
}
