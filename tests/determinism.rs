//! Determinism regression test pinning the orchestrator's
//! `seed + config_index` contract: the generated dataset must be
//! byte-identical regardless of worker-thread count. Every scaling
//! item on the roadmap (sharding, batching, caching) leans on this.

use armdse::core::orchestrator::{generate_dataset, GenOptions};
use armdse::core::space::ParamSpace;
use armdse::kernels::{App, WorkloadScale};

fn gen_csv_bytes(threads: usize) -> Vec<u8> {
    let opts = GenOptions {
        configs: 16,
        scale: WorkloadScale::Tiny,
        seed: 0xD37E_2217,
        threads,
        apps: App::ALL.to_vec(),
    };
    let data = generate_dataset(&ParamSpace::paper(), &opts);
    assert!(!data.rows.is_empty(), "dataset must not be empty");
    let path = std::env::temp_dir().join(format!("armdse_det_{threads}threads.csv"));
    data.save_csv(&path).expect("save csv");
    let bytes = std::fs::read(&path).expect("read csv back");
    std::fs::remove_file(&path).ok();
    bytes
}

/// The rows serialised with 1 worker thread and 8 worker threads must
/// be byte-for-byte identical.
#[test]
fn dataset_bytes_identical_across_thread_counts() {
    let single = gen_csv_bytes(1);
    let eight = gen_csv_bytes(8);
    assert!(
        single == eight,
        "dataset CSV differs between threads=1 ({} bytes) and threads=8 ({} bytes)",
        single.len(),
        eight.len()
    );
}

/// Sanity companion: a different seed must change the bytes (guards
/// against the comparison trivially passing on constant output).
#[test]
fn different_seed_changes_dataset_bytes() {
    let base = gen_csv_bytes(2);
    let opts = GenOptions {
        configs: 16,
        scale: WorkloadScale::Tiny,
        seed: 0x0DD_5EED,
        threads: 2,
        apps: App::ALL.to_vec(),
    };
    let data = generate_dataset(&ParamSpace::paper(), &opts);
    let path = std::env::temp_dir().join("armdse_det_altseed.csv");
    data.save_csv(&path).expect("save csv");
    let other = std::fs::read(&path).expect("read csv back");
    std::fs::remove_file(&path).ok();
    assert_ne!(base, other, "distinct seeds must give distinct datasets");
}
