//! Pause/resume byte-identity for the adaptive explorer.
//!
//! A run paused mid-round through the observer hook and resumed must
//! produce byte-identical artifacts (dataset CSV, curve CSV, curve
//! JSON) and the same selected design-point sequence as an
//! uninterrupted run — at 1 thread and at 8 threads, and across the
//! two (thread count must never leak into the artifacts).

use armdse_core::engine::Engine;
use armdse_core::explorer::{ExploreControl, ExploreOptions, ExploreProgress, Explorer};
use armdse_core::space::ParamSpace;
use armdse_kernels::{App, WorkloadScale};
use armdse_mltree::ForestParams;
use std::path::{Path, PathBuf};

fn opts(threads: usize) -> ExploreOptions {
    ExploreOptions {
        app: App::Stream,
        scale: WorkloadScale::Tiny,
        seed: 1234,
        pool: 60,
        budget: 12,
        batch: 4,
        holdout: 10,
        threads,
        pareto: false,
        forest: ForestParams {
            n_trees: 8,
            ..Default::default()
        },
        chunk_jobs: 2, // several chunks per round: mid-round pause points
        ..ExploreOptions::for_app(App::Stream)
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("armdse_explorer_resume_{name}"));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn artifact_bytes(dir: &Path, name: &str) -> Vec<u8> {
    std::fs::read(dir.join(name)).unwrap_or_else(|e| panic!("{name} in {dir:?}: {e}"))
}

#[test]
fn paused_exploration_resumes_to_byte_identical_artifacts() {
    for threads in [1usize, 8] {
        let engine = Engine::idealized();
        let space = ParamSpace::paper();

        // Uninterrupted reference run.
        let ref_dir = fresh_dir(&format!("ref_t{threads}"));
        let reference = Explorer::new(&engine, &space, opts(threads), &ref_dir)
            .unwrap()
            .run(ExploreControl::default())
            .unwrap();
        assert!(reference.completed);
        assert_eq!(reference.samples, 12, "tiny stream runs all validate");
        assert_eq!(reference.rounds_done, 3);

        // Paused run: stop mid-round-1 (after 2 of its 4 jobs), resume.
        let dir = fresh_dir(&format!("paused_t{threads}"));
        let ex = Explorer::new(&engine, &space, opts(threads), &dir).unwrap();
        let mut pause = |p: &ExploreProgress| !(p.round == 1 && p.jobs_done >= 2);
        let first = ex
            .run(ExploreControl {
                resume: false,
                observer: Some(&mut pause),
            })
            .unwrap();
        assert!(!first.completed, "observer must have paused the run");
        assert_eq!(first.rounds_done, 1, "round 0 finished, round 1 paused");

        let resumed = ex
            .run(ExploreControl {
                resume: true,
                observer: None,
            })
            .unwrap();
        assert!(resumed.completed);

        assert_eq!(
            resumed.selected, reference.selected,
            "threads={threads}: resumed run selected a different design-point sequence"
        );
        assert_eq!(resumed.curve, reference.curve);
        for artifact in [
            "explore_dataset.csv",
            "explore_curve.csv",
            "explore_curve.json",
        ] {
            assert_eq!(
                artifact_bytes(&dir, artifact),
                artifact_bytes(&ref_dir, artifact),
                "threads={threads}: {artifact} differs after pause+resume"
            );
        }

        // Resuming a completed exploration is a no-op with the same report.
        let again = ex
            .run(ExploreControl {
                resume: true,
                observer: None,
            })
            .unwrap();
        assert!(again.completed);
        assert_eq!(again.selected, reference.selected);
        assert_eq!(again.curve, reference.curve);

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&ref_dir).ok();
    }
}

#[test]
fn thread_count_never_leaks_into_the_artifacts() {
    let engine = Engine::idealized();
    let space = ParamSpace::paper();
    let d1 = fresh_dir("t1");
    let d8 = fresh_dir("t8");
    let r1 = Explorer::new(&engine, &space, opts(1), &d1)
        .unwrap()
        .run(ExploreControl::default())
        .unwrap();
    let r8 = Explorer::new(&engine, &space, opts(8), &d8)
        .unwrap()
        .run(ExploreControl::default())
        .unwrap();
    assert_eq!(r1.selected, r8.selected);
    assert_eq!(r1.curve, r8.curve);
    for artifact in [
        "explore_dataset.csv",
        "explore_curve.csv",
        "explore_curve.json",
    ] {
        assert_eq!(
            artifact_bytes(&d1, artifact),
            artifact_bytes(&d8, artifact),
            "{artifact} differs between 1 and 8 threads"
        );
    }
    std::fs::remove_dir_all(&d1).ok();
    std::fs::remove_dir_all(&d8).ok();
}

#[test]
fn resume_under_different_options_is_refused() {
    let engine = Engine::idealized();
    let space = ParamSpace::paper();
    let dir = fresh_dir("foreign");
    let ex = Explorer::new(&engine, &space, opts(1), &dir).unwrap();
    let mut pause = |p: &ExploreProgress| p.jobs_done < 2;
    ex.run(ExploreControl {
        resume: false,
        observer: Some(&mut pause),
    })
    .unwrap();
    let mut other = opts(1);
    other.seed = 9999; // a different exploration entirely
    let err = Explorer::new(&engine, &space, other, &dir)
        .unwrap()
        .run(ExploreControl {
            resume: true,
            observer: None,
        })
        .unwrap_err();
    assert!(
        err.to_string().contains("different exploration"),
        "unexpected error: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
