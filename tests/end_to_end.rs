//! End-to-end integration: the full paper pipeline through the public
//! API — sampling → plan → engine run → dataset → surrogate →
//! introspection.

use armdse::core::orchestrator::GenOptions;
use armdse::core::space::ParamSpace;
use armdse::core::{DseDataset, Engine, RunPlan, SurrogateSuite};
use armdse::kernels::{App, WorkloadScale};
use armdse::mltree::Regressor;

fn opts() -> GenOptions {
    GenOptions {
        configs: 50,
        scale: WorkloadScale::Tiny,
        seed: 31_337,
        threads: 2,
        apps: App::ALL.to_vec(),
    }
}

fn dataset(space: &ParamSpace, opts: &GenOptions) -> DseDataset {
    let plan = RunPlan::new(space, opts).expect("valid plan");
    let mut data = DseDataset::default();
    Engine::idealized()
        .run(&plan, &mut data)
        .expect("in-memory sink cannot fail");
    data
}

#[test]
fn full_pipeline_dataset_to_importance() {
    let space = ParamSpace::paper();
    let data = dataset(&space, &opts());
    // Every sampled config validates on every app at Tiny scale.
    assert_eq!(data.rows.len(), 50 * 4);
    assert!(data.discarded.is_empty());

    let suite = SurrogateSuite::train(&data, 0.2, 5);
    assert_eq!(suite.models.len(), 4);
    for m in &suite.models {
        assert_eq!(m.importance.features.len(), 30);
        assert!(m.metrics.n_train > m.metrics.n_test);
        // The tree must beat predicting the mean (R² > 0 is not
        // guaranteed at this size, but the MAE must be finite and the
        // tolerance curve populated).
        assert!(m.metrics.mae.is_finite());
        assert_eq!(m.metrics.tolerance_curve.len(), 7);
    }
}

#[test]
fn dataset_round_trips_through_csv_file() {
    let space = ParamSpace::paper();
    let mut o = opts();
    o.configs = 8;
    let data = dataset(&space, &o);
    let path = std::env::temp_dir().join("armdse_e2e_dataset.csv");
    data.save_csv(&path).unwrap();
    let back = DseDataset::load_csv(&path).unwrap();
    assert_eq!(data, back);
    std::fs::remove_file(&path).ok();

    // A reloaded dataset trains identically.
    let a = SurrogateSuite::train(&data, 0.25, 9);
    let b = SurrogateSuite::train(&back, 0.25, 9);
    for (ma, mb) in a.models.iter().zip(&b.models) {
        assert_eq!(ma.metrics, mb.metrics);
    }
}

#[test]
fn surrogate_predictions_are_cheap_and_deterministic() {
    let space = ParamSpace::paper();
    let data = dataset(&space, &opts());
    let suite = SurrogateSuite::train(&data, 0.2, 1);
    let model = suite.model(App::Stream).unwrap();
    let cfg = space.sample_seeded(123_456);
    let p1 = model.tree.predict_one(&cfg.to_features());
    let p2 = model.tree.predict_one(&cfg.to_features());
    assert_eq!(p1, p2);
    assert!(p1 > 0.0, "cycle predictions are positive");
}

#[test]
fn surrogate_interpolates_in_plausible_range() {
    // Predictions on fresh configs should land within the range of the
    // training targets (trees cannot extrapolate) — the property that
    // makes the paper's introspection meaningful.
    let space = ParamSpace::paper();
    let data = dataset(&space, &opts());
    let suite = SurrogateSuite::train(&data, 0.2, 1);
    for m in &suite.models {
        let ys: Vec<f64> = data
            .for_app(m.app)
            .iter()
            .map(|r| r.cycles as f64)
            .collect();
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for seed in 1000..1020 {
            let cfg = space.sample_seeded(seed);
            let p = m.tree.predict_one(&cfg.to_features());
            assert!(
                (lo..=hi).contains(&p),
                "{:?}: prediction {p} outside [{lo}, {hi}]",
                m.app
            );
        }
    }
}

#[test]
fn per_app_trees_differ() {
    // The paper trains one model per application because the codes have
    // contrasting performance trends; the fitted trees must differ.
    let space = ParamSpace::paper();
    let data = dataset(&space, &opts());
    let suite = SurrogateSuite::train(&data, 0.2, 1);
    let cfg = space.sample_seeded(777);
    let preds: Vec<f64> = suite
        .models
        .iter()
        .map(|m| m.tree.predict_one(&cfg.to_features()))
        .collect();
    let distinct = preds
        .iter()
        .map(|p| p.to_bits())
        .collect::<std::collections::HashSet<_>>()
        .len();
    assert!(
        distinct >= 3,
        "per-app models should predict differently: {preds:?}"
    );
}
