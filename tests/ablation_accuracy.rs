//! Ablation: surrogate-model family accuracy comparison.
//!
//! The paper chooses a decision tree over linear regression because
//! "complex parameter relationships lead to non-linear trends that can be
//! modelled within the tree", and names richer models as future work.
//! This test pins the ordering on a real simulated dataset: the tree must
//! beat the linear baseline, and the random forest must be at least
//! competitive with a single tree.

use armdse::core::orchestrator::{generate_dataset, GenOptions};
use armdse::core::space::ParamSpace;
use armdse::kernels::{App, WorkloadScale};
use armdse::mltree::{
    mae, train_test_split, DecisionTreeRegressor, LinearRegression, RandomForest, Regressor,
};

#[test]
fn tree_beats_linear_baseline_on_simulated_cycles() {
    // STREAM at Small scale: cycles respond hyperbolically to vector
    // length (∝ 1/VL over a 16x range) and with a saturating knee to ROB
    // size — exactly the non-linear trends the paper argues for trees.
    // A linear model cannot fit either; the tree can, given enough data.
    let data = generate_dataset(
        &ParamSpace::paper(),
        &GenOptions {
            configs: 400,
            scale: WorkloadScale::Small,
            seed: 2_2024,
            threads: 2,
            apps: vec![App::Stream],
        },
    );
    let ml = data.ml_dataset(App::Stream);
    let (train, test) = train_test_split(&ml, 0.25, 11);

    let tree = DecisionTreeRegressor::fit(&train.x, &train.y);
    let linear = LinearRegression::fit(&train.x, &train.y);
    let forest = RandomForest::fit(&train.x, &train.y, 11);

    let mae_tree = mae(&tree.predict(&test.x), &test.y);
    let mae_linear = mae(&linear.predict(&test.x), &test.y);
    let mae_forest = mae(&forest.predict(&test.x), &test.y);

    assert!(
        mae_tree < mae_linear,
        "tree ({mae_tree:.0}) must beat linear ({mae_linear:.0}): cycles are non-linear in the parameters"
    );
    assert!(
        mae_forest < mae_linear,
        "forest ({mae_forest:.0}) must beat linear ({mae_linear:.0})"
    );
}

#[test]
fn unified_model_is_not_better_than_per_app_models() {
    // The paper: "a decision tree regressor trained on multiple
    // applications would likely branch based on a given application …
    // without necessarily improving learned trends." Check the per-app
    // split loses nothing: mean per-app MAE <= unified-model MAE * 1.25.
    //
    // The original seed expectation was wrong: at 120 Tiny-scale
    // configs the unified tree *reliably wins* (ratio ~1.5), because it
    // trains on twice the rows and both per-app trees are data-starved
    // — a regime artefact, not the paper's claim (measured ratios:
    // 1.51 at 120 configs, 1.05 at 240, 0.98 at 480, 0.87 at 960).
    // The test therefore uses 480 configs, where each per-app model has
    // enough data for the comparison the paper actually makes, and
    // averages over three dataset seeds so it pins the trend rather
    // than one draw (single-seed ratios at 480 span 0.78-1.17).
    let mut per_app_sum = 0.0;
    let mut unified_sum = 0.0;
    for seed in [77, 78, 79] {
        let data = generate_dataset(
            &ParamSpace::paper(),
            &GenOptions {
                configs: 480,
                scale: WorkloadScale::Tiny,
                seed,
                threads: 8,
                apps: vec![App::Stream, App::MiniSweep],
            },
        );

        // Per-app trees.
        let mut per_app_maes = Vec::new();
        for app in [App::Stream, App::MiniSweep] {
            let ml = data.ml_dataset(app);
            let (train, test) = train_test_split(&ml, 0.25, 3);
            let tree = DecisionTreeRegressor::fit(&train.x, &train.y);
            per_app_maes.push(mae(&tree.predict(&test.x), &test.y));
        }
        per_app_sum += per_app_maes.iter().sum::<f64>() / per_app_maes.len() as f64;

        // Unified tree with the app id as a 31st feature.
        let mut x = armdse::mltree::Matrix::new(31);
        let mut y = Vec::new();
        for r in &data.rows {
            let mut row = r.features.to_vec();
            row.push(r.app.index() as f64);
            x.push_row(&row);
            y.push(r.cycles as f64);
        }
        let names: Vec<String> = (0..31).map(|i| format!("f{i}")).collect();
        let unified_ds = armdse::mltree::Dataset::new(x, y, names);
        let (train, test) = train_test_split(&unified_ds, 0.25, 3);
        let unified_tree = DecisionTreeRegressor::fit(&train.x, &train.y);
        unified_sum += mae(&unified_tree.predict(&test.x), &test.y);
    }

    assert!(
        per_app_sum <= unified_sum * 1.25,
        "per-app models ({per_app_sum:.0}) should not lose to unified ({unified_sum:.0}) on average"
    );
}
