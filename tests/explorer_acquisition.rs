//! Property tests for the explorer's acquisition layer: scores are
//! finite and deterministic, the uncertainty term vanishes when the
//! ensemble agrees, and top-k selection is invariant under any
//! permutation of the candidate pool.

use armdse_core::explorer::{acquisition_scores, pareto_ranks, select_top_k, structure_cost};
use armdse_core::space::ParamSpace;
use armdse_mltree::{ForestParams, Matrix, RandomForest};
use armdse_rng::{Rng, SeedableRng, SliceRandom, Xoshiro256pp};

/// A spread of plausible (prediction, uncertainty) pairs at cycle-count
/// magnitudes, deterministic per seed.
fn pool(seed: u64, n: usize) -> (Vec<u64>, Vec<f64>, Vec<f64>) {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let ids: Vec<u64> = (0..n as u64).collect();
    let preds: Vec<f64> = (0..n)
        .map(|_| 1.0e7 + rng.gen_range(0..5_000_000u64) as f64)
        .collect();
    let stds: Vec<f64> = (0..n)
        .map(|_| rng.gen_range(0..200_000u64) as f64)
        .collect();
    (ids, preds, stds)
}

#[test]
fn scores_are_finite_and_deterministic_for_a_fixed_seed() {
    for seed in 0..10u64 {
        let (_, preds, stds) = pool(seed, 100);
        for eps in [0.0, 0.05, 0.5, 1.0] {
            let a = acquisition_scores(&preds, &stds, eps);
            let b = acquisition_scores(&preds, &stds, eps);
            assert_eq!(a, b, "same inputs must give identical scores");
            for (i, s) in a.iter().enumerate() {
                assert!(s.is_finite(), "seed {seed} eps {eps} cand {i}: {s}");
                assert!(
                    (-1e-12..=1.0 + 1e-12).contains(s),
                    "score {s} outside [0, 1]"
                );
            }
        }
    }
}

#[test]
fn degenerate_pools_still_score_finite() {
    // All predictions equal (zero exploitation span), all stds zero
    // (zero uncertainty span), and both at once.
    let flat = vec![3.0e7; 16];
    let varied: Vec<f64> = (0..16).map(|i| 1.0e7 + i as f64 * 1e5).collect();
    let zeros = vec![0.0; 16];
    let some: Vec<f64> = (0..16).map(|i| i as f64 * 100.0).collect();
    for (p, s) in [(&flat, &some), (&varied, &zeros), (&flat, &zeros)] {
        for score in acquisition_scores(p, s, 0.3) {
            assert!(score.is_finite());
        }
    }
}

#[test]
fn uncertainty_term_is_zero_when_all_trees_agree() {
    // A constant-target forest: every tree predicts the same value, so
    // predict_variance is exactly 0 and an all-exploration score
    // (eps = 1) must be 0 everywhere — no phantom uncertainty.
    let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64, (i % 7) as f64]).collect();
    let y = vec![1.25e7; 60];
    let f = RandomForest::fit_with(
        &Matrix::from_rows(&rows),
        &y,
        ForestParams {
            n_trees: 16,
            ..Default::default()
        },
        9,
    );
    let stds: Vec<f64> = (0..30)
        .map(|q| f.predict_variance(&[q as f64, (q % 5) as f64]).sqrt())
        .collect();
    assert!(
        stds.iter().all(|&s| s == 0.0),
        "ensemble must agree: {stds:?}"
    );
    let preds = vec![1.25e7; 30];
    for s in acquisition_scores(&preds, &stds, 1.0) {
        assert_eq!(s, 0.0);
    }
}

#[test]
fn top_k_selection_is_invariant_under_pool_permutation() {
    for seed in 0..20u64 {
        let (ids, preds, stds) = pool(seed, 64);
        let scores = acquisition_scores(&preds, &stds, 0.25);
        let baseline = select_top_k(&ids, &scores, 8);
        // Shuffle the (id, score) pairing and reselect.
        let mut order: Vec<usize> = (0..ids.len()).collect();
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xDEAD);
        order.shuffle(&mut rng);
        let p_ids: Vec<u64> = order.iter().map(|&i| ids[i]).collect();
        let p_scores: Vec<f64> = order.iter().map(|&i| scores[i]).collect();
        assert_eq!(
            select_top_k(&p_ids, &p_scores, 8),
            baseline,
            "seed {seed}: permuting the pool changed the selection"
        );
    }
}

#[test]
fn top_k_breaks_score_ties_by_candidate_id() {
    let ids = vec![9, 4, 7, 1];
    let scores = vec![0.5, 0.5, 0.9, 0.5];
    assert_eq!(select_top_k(&ids, &scores, 3), vec![7, 1, 4]);
}

#[test]
fn pareto_ranks_identify_a_known_frontier() {
    // (cycles, cost): a and b trade off (rank 0); c is dominated by a
    // (rank 1); d is dominated by everything (rank 2, after c).
    let objs = vec![
        (1.0, 10.0), // a
        (5.0, 2.0),  // b
        (2.0, 11.0), // c: dominated by a
        (6.0, 12.0), // d: dominated by a, b, c
    ];
    assert_eq!(pareto_ranks(&objs), vec![0, 0, 1, 2]);
}

#[test]
fn pareto_ranks_are_permutation_consistent() {
    let (_, preds, stds) = pool(3, 40);
    let objs: Vec<(f64, f64)> = preds.iter().zip(&stds).map(|(&a, &b)| (a, b)).collect();
    let ranks = pareto_ranks(&objs);
    let mut order: Vec<usize> = (0..objs.len()).collect();
    order.reverse();
    let perm: Vec<(f64, f64)> = order.iter().map(|&i| objs[i]).collect();
    let perm_ranks = pareto_ranks(&perm);
    for (pos, &orig) in order.iter().enumerate() {
        assert_eq!(perm_ranks[pos], ranks[orig]);
    }
}

#[test]
fn structure_cost_tracks_the_sized_structures() {
    // Widening the ROB (feature 10) must raise the cost; changing a
    // latency-like feature outside the cost window must not.
    let space = ParamSpace::paper();
    let base = space.sample_seeded(7).to_features();
    let cost = structure_cost(&base);
    assert!(cost > 0.0 && cost.is_finite());
    let mut bigger = base;
    bigger[10] += 64.0;
    assert!(structure_cost(&bigger) > cost);
    let mut elsewhere = base;
    elsewhere[0] += 64.0;
    assert_eq!(structure_cost(&elsewhere), cost);
}
