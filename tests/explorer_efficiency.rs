//! Sample-efficiency regression test: the adaptive explorer with a
//! budget of N/10 must reach at least 0.95× the held-out R² of the
//! surrogate trained on the full N-point fixed sweep — and must beat a
//! plain random subset of the same size, or the acquisition loop is
//! dead weight. Everything is seeded, so this is a deterministic
//! regression gate; the *claim* it pins is statistical: acquisition
//! buys a ~10× reduction in simulations at ≤5% surrogate-quality cost.
//!
//! The study runs in a pinned subspace (four free features, the rest
//! fixed at ThunderX2 values), the same device the paper uses for its
//! constrained sweeps (Figs. 4/5). That is where a 24-simulation budget
//! can saturate a surrogate; in the raw 30-dimensional space *no*
//! sampler converges by N/10, so the ratio would only measure noise.

use armdse_core::config::DesignConfig;
use armdse_core::engine::{Engine, RunPlan};
use armdse_core::explorer::{ExploreControl, ExploreOptions, Explorer};
use armdse_core::orchestrator::GenOptions;
use armdse_core::space::{ParamSpace, FEATURE_NAMES};
use armdse_core::DseDataset;
use armdse_kernels::{App, WorkloadScale};
use armdse_mltree::{r2, ForestParams, Matrix, RandomForest, Regressor};

const POOL: usize = 240;
const BUDGET: usize = 24; // N/10
const HOLDOUT: usize = 40;
const SEED: u64 = 2024;
const FREE: [&str; 4] = ["Frontend-Width", "Commit-Width", "L1-Latency", "ROB-Size"];

fn forest_params() -> ForestParams {
    ForestParams {
        n_trees: 48,
        ..Default::default()
    }
}

/// Pin every feature outside `FREE` to its ThunderX2 value.
fn pins() -> Vec<(String, f64)> {
    let base = DesignConfig::thunderx2().to_features();
    FEATURE_NAMES
        .iter()
        .enumerate()
        .filter(|(_, n)| !FREE.contains(n))
        .map(|(i, n)| (n.to_string(), base[i]))
        .collect()
}

/// Simulate candidates `[lo, hi)` of the shared pool in one engine run.
fn simulate_range(engine: &Engine, space: &ParamSpace, lo: usize, hi: usize) -> DseDataset {
    let gen = GenOptions {
        configs: hi - lo,
        scale: WorkloadScale::Tiny,
        seed: SEED,
        threads: 4,
        apps: vec![App::Stream],
    };
    let pv = pins();
    let pr: Vec<(&str, f64)> = pv.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let plan = RunPlan::pinned(space, &gen, &pr)
        .unwrap()
        .with_config_indices((lo as u64..hi as u64).collect())
        .unwrap();
    let mut data = DseDataset::default();
    engine.run(&plan, &mut data).unwrap();
    data
}

fn xy(data: &DseDataset, upto: usize) -> (Matrix, Vec<f64>) {
    let mut x = Matrix::new(30);
    let mut y = Vec::new();
    for r in data.rows.iter().take(upto) {
        x.push_row(&r.features);
        y.push(r.cycles as f64);
    }
    (x, y)
}

#[test]
fn adaptive_budget_n_over_10_matches_the_full_sweep_surrogate() {
    let engine = Engine::idealized();
    let space = ParamSpace::paper();

    // Held-out evaluation set: candidates the sweep never trains on.
    let (hx, hy) = xy(
        &simulate_range(&engine, &space, POOL, POOL + HOLDOUT),
        HOLDOUT,
    );

    // Fixed full sweep: all N candidates, surrogate fit from scratch.
    let sweep = simulate_range(&engine, &space, 0, POOL);
    assert_eq!(
        sweep.rows.len(),
        POOL,
        "tiny Stream sweep must all validate"
    );
    let (sx, sy) = xy(&sweep, POOL);
    let full = RandomForest::fit_with(&sx, &sy, forest_params(), SEED);
    let full_r2 = r2(&full.predict(&hx), &hy);
    assert!(
        full_r2 > 0.9,
        "full-sweep surrogate must be strong before the ratio means anything: {full_r2}"
    );

    // Baseline at the same budget: the first BUDGET pool candidates
    // (i.e. what a fixed sweep stopped early would have trained on).
    let (rx, ry) = xy(&sweep, BUDGET);
    let random = RandomForest::fit_with(&rx, &ry, forest_params(), SEED);
    let random_r2 = r2(&random.predict(&hx), &hy);

    // Adaptive explorer at a tenth of the budget, same pool and seed.
    // Exploration-heavy ε schedule: the goal of this run is surrogate
    // accuracy, so acquisition should lean on ensemble uncertainty.
    let dir = std::env::temp_dir().join("armdse_explorer_efficiency");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let opts = ExploreOptions {
        app: App::Stream,
        scale: WorkloadScale::Tiny,
        seed: SEED,
        pool: POOL,
        budget: BUDGET,
        batch: 4,
        holdout: HOLDOUT,
        threads: 4,
        pins: pins(),
        forest: forest_params(),
        eps0: 1.0,
        eps_min: 0.8,
        eps_decay: 0.95,
        ..ExploreOptions::for_app(App::Stream)
    };
    let report = Explorer::new(&engine, &space, opts, &dir)
        .unwrap()
        .run(ExploreControl::default())
        .unwrap();
    assert!(report.completed);
    assert_eq!(report.samples, BUDGET);
    let adaptive_r2 = report.final_r2();

    assert!(
        adaptive_r2 >= 0.95 * full_r2,
        "adaptive R² {adaptive_r2:.4} at {BUDGET} sims fell below 0.95× the \
         full-sweep R² {full_r2:.4} at {POOL} sims"
    );
    assert!(
        adaptive_r2 > random_r2,
        "adaptive R² {adaptive_r2:.4} must beat the same-budget random \
         subset's {random_r2:.4}, or acquisition is dead weight"
    );

    // The curve must actually improve as samples accrue: the final
    // point must beat the first refit (round 0 is pure random).
    assert!(
        report.curve.last().unwrap().r2 > report.curve.first().unwrap().r2,
        "accuracy-vs-samples curve never improved: {:?}",
        report
            .curve
            .iter()
            .map(|p| (p.samples, p.r2))
            .collect::<Vec<_>>()
    );

    std::fs::remove_dir_all(&dir).ok();
}
