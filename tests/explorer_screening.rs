//! Sampled-tier screening in the adaptive explorer (`screen_factor`):
//! the acquisition loop over-selects greedy candidates by the factor,
//! re-ranks the shortlist by the Sampled backend's cycle estimates, and
//! simulates only the best at full fidelity. These tests pin the three
//! contracts the feature rests on: a screened campaign runs to
//! completion and stays deterministic; screening genuinely changes
//! which candidates are picked (it is not dead wiring); and a disabled
//! screen leaves the campaign byte-identical to pre-screening builds
//! (checkpoint fingerprints included, so old run directories resume).

use armdse::core::explorer::{ExploreControl, ExploreOptions, Explorer};
use armdse::core::space::ParamSpace;
use armdse::core::Engine;
use armdse::kernels::{App, WorkloadScale};
use armdse::mltree::ForestParams;
use std::path::{Path, PathBuf};

fn opts(screen_factor: usize) -> ExploreOptions {
    ExploreOptions {
        scale: WorkloadScale::Tiny,
        seed: 4321,
        pool: 60,
        budget: 12,
        batch: 4,
        holdout: 10,
        threads: 2,
        screen_factor,
        forest: ForestParams {
            n_trees: 8,
            ..Default::default()
        },
        ..ExploreOptions::for_app(App::Stream)
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("armdse_explorer_screen_{name}"));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn run_campaign(o: ExploreOptions, dir: &Path) -> Vec<u8> {
    let engine = Engine::idealized();
    let report = Explorer::new(&engine, &ParamSpace::paper(), o, dir)
        .unwrap()
        .run(ExploreControl::default())
        .unwrap();
    assert!(report.completed);
    assert_eq!(report.samples, 12);
    std::fs::read(dir.join("explore_dataset.csv")).unwrap()
}

/// A screened campaign completes, and two identical screened campaigns
/// emit byte-identical datasets (screening is deterministic).
#[test]
fn screened_campaign_is_deterministic_and_changes_selection() {
    let a_dir = fresh_dir("a");
    let b_dir = fresh_dir("b");
    let off_dir = fresh_dir("off");
    let a = run_campaign(opts(3), &a_dir);
    let b = run_campaign(opts(3), &b_dir);
    assert_eq!(a, b, "screened selection must be deterministic");
    // Screening re-ranks the greedy shortlist by sampled cycles, so on
    // this pool it must pick a different simulation set than the pure
    // surrogate ranking (otherwise the wiring is dead).
    let off = run_campaign(opts(0), &off_dir);
    assert_ne!(a, off, "screening never changed any selection");
    for d in [a_dir, b_dir, off_dir] {
        std::fs::remove_dir_all(&d).ok();
    }
}

/// `screen_factor: 0` and `1` are both "disabled" and identical — the
/// knob only bites at 2x and above, so default campaigns are untouched.
#[test]
fn disabled_screen_factors_are_equivalent() {
    let zero_dir = fresh_dir("zero");
    let one_dir = fresh_dir("one");
    let zero = run_campaign(opts(0), &zero_dir);
    let one = run_campaign(opts(1), &one_dir);
    assert_eq!(zero, one);
    for d in [zero_dir, one_dir] {
        std::fs::remove_dir_all(&d).ok();
    }
}

/// Nonsense screening options are rejected at validation time.
#[test]
fn invalid_screen_options_are_rejected() {
    let engine = Engine::idealized();
    let dir = fresh_dir("invalid");
    let bad = ExploreOptions {
        screen_interval_len: 0,
        ..opts(3)
    };
    assert!(Explorer::new(&engine, &ParamSpace::paper(), bad, &dir).is_err());
    std::fs::remove_dir_all(&dir).ok();
}
