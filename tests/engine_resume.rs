//! Golden checkpoint/resume test (the engine's headline guarantee): a
//! campaign paused mid-flight at a chunk boundary and resumed later —
//! even with a different worker count — must produce a dataset CSV
//! byte-identical to the uninterrupted run. This is what makes long
//! T2 simulation campaigns restartable without invalidating the
//! `seed + config_index` determinism contract.

use armdse::core::orchestrator::GenOptions;
use armdse::core::space::ParamSpace;
use armdse::core::{CsvSink, Engine, Progress, RunControl, RunPlan};
use armdse::kernels::{App, WorkloadScale};
use std::path::PathBuf;

const CONFIGS: usize = 12; // 12 configs x 4 apps = 48 jobs
const CHUNK: usize = 8; // 6 chunks — several checkpoint boundaries

fn opts(threads: usize) -> GenOptions {
    GenOptions {
        configs: CONFIGS,
        scale: WorkloadScale::Tiny,
        seed: 0xC0FF_EE00,
        threads,
        apps: App::ALL.to_vec(),
    }
}

fn plan(threads: usize) -> RunPlan {
    RunPlan::new(&ParamSpace::paper(), &opts(threads))
        .expect("valid plan")
        .with_chunk_jobs(CHUNK)
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("armdse_engine_resume_{name}"))
}

/// Uninterrupted reference run: plain CSV sink, no checkpointing.
fn fresh_csv(threads: usize) -> Vec<u8> {
    let path = tmp(&format!("fresh_{threads}.csv"));
    let mut sink = CsvSink::create(&path).unwrap();
    let summary = Engine::idealized().run(&plan(threads), &mut sink).unwrap();
    assert!(summary.completed);
    assert_eq!(summary.jobs_done, CONFIGS * App::ALL.len());
    drop(sink);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

/// Interrupted run: pause after `pause_after_chunks` chunks, then resume
/// with `resume_threads` workers and run to completion.
fn interrupted_csv(
    run_threads: usize,
    resume_threads: usize,
    pause_after_chunks: usize,
) -> Vec<u8> {
    let tag = format!("resumed_{run_threads}_{resume_threads}_{pause_after_chunks}");
    let path = tmp(&format!("{tag}.csv"));
    let ckpt = tmp(&format!("{tag}.ckpt"));

    // Phase 1: run until the observer pulls the plug.
    let mut chunks = 0usize;
    let mut observer = |_p: &Progress| {
        chunks += 1;
        chunks < pause_after_chunks
    };
    let mut sink = CsvSink::create(&path).unwrap();
    let summary = Engine::idealized()
        .run_controlled(
            &plan(run_threads),
            &mut sink,
            RunControl {
                checkpoint: Some(&ckpt),
                resume: false,
                observer: Some(&mut observer),
                ..RunControl::default()
            },
        )
        .unwrap();
    assert!(
        !summary.completed,
        "pause_after_chunks too large for the campaign"
    );
    assert_eq!(summary.jobs_done, pause_after_chunks * CHUNK);
    drop(sink);

    // Phase 2: a later invocation (possibly with different parallelism)
    // appends to the same CSV and resumes from the checkpoint.
    let mut sink = CsvSink::append(&path).unwrap();
    let summary = Engine::idealized()
        .run_controlled(
            &plan(resume_threads),
            &mut sink,
            RunControl {
                checkpoint: Some(&ckpt),
                resume: true,
                ..RunControl::default()
            },
        )
        .unwrap();
    assert!(summary.completed);
    assert_eq!(summary.resumed_from, pause_after_chunks * CHUNK);
    drop(sink);

    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&ckpt).ok();
    bytes
}

#[test]
fn resumed_run_is_byte_identical_single_threaded() {
    let fresh = fresh_csv(1);
    let resumed = interrupted_csv(1, 1, 2);
    assert_eq!(
        fresh, resumed,
        "1-thread resume diverged from the uninterrupted run"
    );
}

#[test]
fn resumed_run_is_byte_identical_multi_threaded() {
    let fresh = fresh_csv(8);
    let resumed = interrupted_csv(8, 8, 3);
    assert_eq!(
        fresh, resumed,
        "8-thread resume diverged from the uninterrupted run"
    );
}

#[test]
fn thread_count_may_change_across_the_pause() {
    // The checkpoint fingerprint deliberately excludes the worker count:
    // a campaign paused on an 8-way box must resume cleanly on 1 thread
    // (and vice versa) with identical output.
    let fresh = fresh_csv(1);
    assert_eq!(
        fresh,
        interrupted_csv(8, 1, 1),
        "8→1 thread resume diverged"
    );
    assert_eq!(
        fresh,
        interrupted_csv(1, 8, 4),
        "1→8 thread resume diverged"
    );
}

#[test]
fn pause_point_does_not_leak_into_the_bytes() {
    // Every possible chunk boundary yields the same final file.
    let fresh = fresh_csv(2);
    for pause in 1..=5 {
        assert_eq!(
            fresh,
            interrupted_csv(2, 2, pause),
            "resume after chunk {pause} diverged"
        );
    }
}
