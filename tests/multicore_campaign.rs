//! End-to-end campaign tests for the multicore machine layer
//! (`Engine::multicore`): the one-core machine is the single-core
//! banked backend exactly, a two-core campaign over the new kernels
//! (SpMV, GEMM, Graph) streams byte-identical artifacts at any worker
//! thread count and across pause/resume, and a checkpoint written by a
//! multicore campaign refuses to resume under a different machine
//! shape.

use armdse::core::engine::{CsvSink, Engine, Progress, RunControl, RunPlan};
use armdse::core::metrics::{MetricsCsvSink, MetricsRow};
use armdse::core::orchestrator::GenOptions;
use armdse::core::space::ParamSpace;
use armdse::core::DseDataset;
use armdse::kernels::{App, WorkloadScale};
use armdse::simcore::BankedProxy;
use std::path::PathBuf;

const CONFIGS: usize = 8; // 8 configs x 3 apps = 24 jobs
const CHUNK: usize = 6; // 4 chunks

/// The new kernels, end-to-end: every job of these campaigns runs
/// SpMV, GEMM, or the pointer-chasing Graph kernel.
const KERNELS: [App; 3] = [App::Spmv, App::Gemm, App::Graph];

fn plan(threads: usize) -> RunPlan {
    let opts = GenOptions {
        configs: CONFIGS,
        scale: WorkloadScale::Tiny,
        seed: 0x0DD_C0DE,
        threads,
        apps: KERNELS.to_vec(),
    };
    RunPlan::new(&ParamSpace::paper(), &opts)
        .expect("valid plan")
        .with_chunk_jobs(CHUNK)
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("armdse_mc_campaign_{name}"))
}

/// Run a full campaign on `engine`, returning the dataset rows and the
/// in-memory metrics stream.
fn campaign(engine: &Engine, threads: usize) -> (DseDataset, Vec<MetricsRow>) {
    let mut data = DseDataset::default();
    let mut metrics: Vec<MetricsRow> = Vec::new();
    let summary = engine
        .run_controlled(
            &plan(threads),
            &mut data,
            RunControl {
                metrics: Some(&mut metrics),
                ..RunControl::default()
            },
        )
        .unwrap();
    assert!(summary.completed);
    (data, metrics)
}

#[test]
fn one_core_machine_matches_the_banked_proxy_campaign() {
    // Topology {1, 8} is the default shape: the machine must be the
    // classic single-core banked path bit-for-bit, rows and metrics.
    let (mc_data, mc_metrics) = campaign(&Engine::multicore(1, 8), 4);
    let (bp_data, bp_metrics) = campaign(&Engine::new(Box::new(BankedProxy)), 4);
    assert_eq!(mc_data, bp_data, "N=1 dataset diverged from BankedProxy");
    assert_eq!(mc_metrics, bp_metrics, "N=1 metrics diverged");
    // One core means aggregate-only metrics rows.
    assert!(mc_metrics.iter().all(|m| m.core.is_none()));
    assert_eq!(mc_metrics.len(), CONFIGS * KERNELS.len());
}

#[test]
fn two_core_campaign_emits_per_core_rows() {
    let (data, metrics) = campaign(&Engine::multicore(2, 4), 2);
    let jobs = CONFIGS * KERNELS.len();
    assert_eq!(data.rows.len() + data.discarded.len(), jobs);
    // One aggregate row plus one detail row per core, in job order.
    assert_eq!(metrics.len(), jobs * 3);
    for chunk in metrics.chunks(3) {
        assert_eq!(chunk[0].core, None);
        assert_eq!(chunk[1].core, Some(0));
        assert_eq!(chunk[2].core, Some(1));
        // The aggregate's makespan is the slowest core, and retirement
        // sums across cores.
        assert_eq!(chunk[0].cycles, chunk[1].cycles.max(chunk[2].cycles));
        assert_eq!(chunk[0].retired, chunk[1].retired + chunk[2].retired);
    }
}

/// Uninterrupted two-core campaign artifacts (dataset + metrics CSV
/// bytes) at the given thread count.
fn fresh_artifacts(threads: usize) -> (Vec<u8>, Vec<u8>) {
    let dpath = tmp(&format!("fresh_data_{threads}.csv"));
    let mpath = tmp(&format!("fresh_metrics_{threads}.csv"));
    let mut sink = CsvSink::create(&dpath).unwrap();
    let mut msink = MetricsCsvSink::create(&mpath).unwrap();
    let summary = Engine::multicore(2, 4)
        .run_controlled(
            &plan(threads),
            &mut sink,
            RunControl {
                metrics: Some(&mut msink),
                ..RunControl::default()
            },
        )
        .unwrap();
    assert!(summary.completed);
    drop(sink);
    drop(msink);
    let data = std::fs::read(&dpath).unwrap();
    let metrics = std::fs::read(&mpath).unwrap();
    std::fs::remove_file(&dpath).ok();
    std::fs::remove_file(&mpath).ok();
    (data, metrics)
}

#[test]
fn two_core_campaign_is_thread_count_invariant() {
    let (data1, metrics1) = fresh_artifacts(1);
    let (data8, metrics8) = fresh_artifacts(8);
    assert_eq!(
        data1, data8,
        "dataset bytes diverged between 1 and 8 threads"
    );
    assert_eq!(metrics1, metrics8, "metrics bytes diverged");
}

#[test]
fn paused_and_resumed_two_core_campaign_is_byte_identical() {
    let (ref_data, ref_metrics) = fresh_artifacts(2);

    let dpath = tmp("resumed_data.csv");
    let mpath = tmp("resumed_metrics.csv");
    let ckpt = tmp("resumed.ckpt");
    std::fs::remove_file(&ckpt).ok();

    // Phase 1: pause after two chunks (12 of 24 jobs).
    let mut sink = CsvSink::create(&dpath).unwrap();
    let mut msink = MetricsCsvSink::create(&mpath).unwrap();
    let mut observer = |p: &Progress| p.jobs_done < 2 * CHUNK;
    let summary = Engine::multicore(2, 4)
        .run_controlled(
            &plan(8),
            &mut sink,
            RunControl {
                checkpoint: Some(&ckpt),
                resume: false,
                observer: Some(&mut observer),
                metrics: Some(&mut msink),
                ..RunControl::default()
            },
        )
        .unwrap();
    assert!(!summary.completed);
    assert_eq!(summary.jobs_done, 2 * CHUNK);
    drop(sink);
    drop(msink);

    // The paused checkpoint records the machine shape: a single-core
    // engine must refuse to continue it.
    let mut wrong = CsvSink::append(&dpath).unwrap();
    let err = Engine::idealized()
        .run_controlled(
            &plan(1),
            &mut wrong,
            RunControl {
                checkpoint: Some(&ckpt),
                resume: true,
                ..RunControl::default()
            },
        )
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("machine shapes") || msg.contains("mc.cores"),
        "expected a machine-shape mismatch error, got: {msg}"
    );
    drop(wrong);

    // Phase 2: resume on the matching machine, different thread count.
    let mut sink = CsvSink::append(&dpath).unwrap();
    let mut msink = MetricsCsvSink::append(&mpath).unwrap();
    let summary = Engine::multicore(2, 4)
        .run_controlled(
            &plan(1),
            &mut sink,
            RunControl {
                checkpoint: Some(&ckpt),
                resume: true,
                metrics: Some(&mut msink),
                ..RunControl::default()
            },
        )
        .unwrap();
    assert!(summary.completed);
    assert_eq!(summary.resumed_from, 2 * CHUNK);
    drop(sink);
    drop(msink);

    let data = std::fs::read(&dpath).unwrap();
    let metrics = std::fs::read(&mpath).unwrap();
    std::fs::remove_file(&dpath).ok();
    std::fs::remove_file(&mpath).ok();
    std::fs::remove_file(&ckpt).ok();
    assert_eq!(ref_data, data, "paused+resumed dataset CSV diverged");
    assert_eq!(ref_metrics, metrics, "paused+resumed metrics CSV diverged");
}
