//! Cycle-accounting invariants of the observability layer.
//!
//! Two properties are pinned here (see docs/METRICS.md):
//!
//! 1. **Conservation** — `cycles == Σ retire_* + Σ stall_*`: the
//!    exclusive attribution charges every simulated cycle to exactly
//!    one bucket, including on pathologically crippled design points
//!    where a single structure dominates.
//! 2. **Transparency** — enabling metrics collection changes nothing:
//!    the dataset CSV produced by a metrics-on campaign is
//!    byte-identical to a metrics-off one.

use armdse::core::engine::{CsvSink, Engine, RunControl, RunPlan};
use armdse::core::metrics::MetricsRow;
use armdse::core::orchestrator::GenOptions;
use armdse::core::space::ParamSpace;
use armdse::core::DesignConfig;
use armdse::kernels::{App, WorkloadScale};
use armdse::memsim::MemParams;
use armdse::simcore::{simulate, simulate_with_metrics, CoreParams, CycleBucket};

fn check_conserves(core: &CoreParams, mem: &MemParams, tag: &str) {
    for app in App::ALL {
        let engine = Engine::idealized();
        let cfg = DesignConfig {
            core: *core,
            mem: *mem,
        };
        let (stats, counters) = engine.simulate_config_metrics(app, WorkloadScale::Tiny, &cfg);
        assert_eq!(counters.cycles, stats.cycles, "{tag}/{app:?}");
        assert!(
            counters.conserves(),
            "{tag}/{app:?}: {} cycles, {} attributed ({:?})",
            counters.cycles,
            counters.attributed_cycles(),
            counters.buckets
        );
        let by_hand: u64 = CycleBucket::ALL.iter().map(|&b| counters.bucket(b)).sum();
        assert_eq!(by_hand, stats.cycles, "{tag}/{app:?}: bucket sum");
        assert_eq!(
            counters.retire_cycles() + counters.stall_cycles(),
            stats.cycles,
            "{tag}/{app:?}: retire+stall split"
        );
    }
}

#[test]
fn baseline_conserves_every_cycle() {
    check_conserves(
        &CoreParams::thunderx2(),
        &MemParams::thunderx2(),
        "baseline",
    );
}

#[test]
fn crippled_structures_still_conserve() {
    let mem = MemParams::thunderx2();
    // Each variant starves a different structure so a different family
    // of stall buckets dominates — conservation must hold in all.
    let mut tiny_rob = CoreParams::thunderx2();
    tiny_rob.rob_size = 8;
    check_conserves(&tiny_rob, &mem, "tiny-rob");

    let mut tiny_queues = CoreParams::thunderx2();
    tiny_queues.load_queue = 4;
    tiny_queues.store_queue = 4;
    check_conserves(&tiny_queues, &mem, "tiny-lsq");

    let mut narrow = CoreParams::thunderx2();
    narrow.commit_width = 1;
    narrow.frontend_width = 1;
    check_conserves(&narrow, &mem, "narrow");

    let mut few_regs = CoreParams::thunderx2();
    few_regs.gp_regs = 40;
    few_regs.fp_regs = 40;
    check_conserves(&few_regs, &mem, "few-regs");

    let mut choked_mem = CoreParams::thunderx2();
    choked_mem.mem_requests_per_cycle = 1;
    choked_mem.loads_per_cycle = 1;
    choked_mem.stores_per_cycle = 1;
    check_conserves(&choked_mem, &mem, "choked-mem");

    let mut slow_mem = MemParams::thunderx2();
    slow_mem.ram_access_ns = 500.0;
    check_conserves(&CoreParams::thunderx2(), &slow_mem, "slow-ram");
}

#[test]
fn sampled_design_points_conserve() {
    let space = ParamSpace::paper();
    let engine = Engine::idealized();
    for seed in 0..20u64 {
        let cfg = space.sample_seeded(seed);
        let app = App::ALL[(seed % 4) as usize];
        let (stats, counters) = engine.simulate_config_metrics(app, WorkloadScale::Tiny, &cfg);
        assert!(
            counters.conserves(),
            "seed {seed}/{app:?}: {} cycles, {} attributed",
            counters.cycles,
            counters.attributed_cycles()
        );
        assert_eq!(counters.cycles, stats.cycles, "seed {seed}");
    }
}

#[test]
fn free_function_entry_point_is_transparent() {
    let core = CoreParams::thunderx2();
    let mem = MemParams::thunderx2();
    let w = armdse::kernels::build_workload(App::TeaLeaf, WorkloadScale::Tiny, core.vector_length);
    let plain = simulate(&w.program, &core, &mem);
    let (stats, counters) = simulate_with_metrics(&w.program, &core, &mem);
    assert_eq!(stats, plain, "metrics perturbed the run");
    assert_eq!(counters.loop_buffer_cycles, stats.stalls.loop_buffer_cycles);
}

#[test]
fn metrics_on_campaign_writes_identical_dataset_bytes() {
    let opts = GenOptions {
        configs: 6,
        scale: WorkloadScale::Tiny,
        seed: 0xBEEF_CAFE,
        threads: 2,
        apps: App::ALL.to_vec(),
    };
    let plan = RunPlan::new(&ParamSpace::paper(), &opts)
        .unwrap()
        .with_chunk_jobs(7);
    let engine = Engine::idealized();
    let tmp = std::env::temp_dir();

    let off_path = tmp.join("armdse_metrics_off.csv");
    let mut off_sink = CsvSink::create(&off_path).unwrap();
    engine.run(&plan, &mut off_sink).unwrap();
    drop(off_sink);

    let on_path = tmp.join("armdse_metrics_on.csv");
    let mut on_sink = CsvSink::create(&on_path).unwrap();
    let mut metrics: Vec<MetricsRow> = Vec::new();
    engine
        .run_controlled(
            &plan,
            &mut on_sink,
            RunControl {
                metrics: Some(&mut metrics),
                ..RunControl::default()
            },
        )
        .unwrap();
    drop(on_sink);

    let off = std::fs::read(&off_path).unwrap();
    let on = std::fs::read(&on_path).unwrap();
    std::fs::remove_file(&off_path).ok();
    std::fs::remove_file(&on_path).ok();
    assert_eq!(off, on, "metrics collection changed the dataset bytes");
    assert_eq!(metrics.len(), plan.jobs());
}
