//! Golden snapshot tests for the `repro` binary's emission formats.
//!
//! The repro driver persists every experiment as text, CSV (RFC 4180),
//! and JSON (RFC 8259) through `armdse_analysis::report::Table` and
//! datasets through `DseDataset::save_csv`. These tests pin those byte
//! streams against fixtures in `tests/golden/` so a formatting change
//! (quoting, escaping, float rendering, column order) shows up as a
//! reviewed diff instead of silently altering published artifacts.
//!
//! Regenerate fixtures with: `ARMDSE_UPDATE_GOLDEN=1 cargo test --test
//! golden_emission`.

use armdse::analysis::report::{tables_to_json, Table};
use armdse::core::dataset::{DseDataset, Row};
use armdse::core::DesignConfig;
use armdse::kernels::App;
use std::fs;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare `actual` against the named fixture, or rewrite the fixture
/// when `ARMDSE_UPDATE_GOLDEN` is set.
fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("ARMDSE_UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden fixture {name}: {e}; regenerate with ARMDSE_UPDATE_GOLDEN=1")
    });
    assert_eq!(
        expected, actual,
        "golden mismatch for {name}; if intentional, regenerate with ARMDSE_UPDATE_GOLDEN=1"
    );
}

/// A table exercising every quoting/escaping edge case the emitters must
/// handle: commas, embedded double quotes, LF/CR/CRLF, tabs, backslashes,
/// control characters, non-ASCII text, empty cells, and spacing that must
/// survive untouched.
fn edge_case_table() -> Table {
    Table::new(
        "Edge \"cases\", annotated",
        &["plain", "quoted,comma", "escapes"],
        vec![
            vec!["a".into(), "b,c".into(), "say \"hi\"".into()],
            vec![
                "line\nbreak".into(),
                "cr\rreturn".into(),
                "crlf\r\nboth".into(),
            ],
            vec![
                "tab\there".into(),
                "back\\slash".into(),
                "ctrl\u{1}char".into(),
            ],
            vec!["".into(), "  padded  ".into(), "héllo 世界".into()],
        ],
    )
    .note("note with \"quotes\" and a\nnewline")
}

fn plain_table() -> Table {
    Table::new(
        "Importance (Stream)",
        &["feature", "percent"],
        vec![
            vec!["Vector-Length".into(), "38.20%".into()],
            vec!["ROB-Size".into(), "14.75%".into()],
            vec!["L1-Latency".into(), "9.01%".into()],
        ],
    )
    .note("headline: top feature Vector-Length")
}

fn sample_dataset() -> DseDataset {
    let f = DesignConfig::thunderx2().to_features();
    DseDataset {
        rows: vec![
            Row {
                app: App::Stream,
                features: f,
                cycles: 123_456,
                sve_fraction: 0.5625,
            },
            Row {
                app: App::TeaLeaf,
                features: f,
                cycles: 7_890,
                sve_fraction: 0.03125,
            },
        ],
        discarded: Vec::new(),
    }
}

#[test]
fn golden_table_csv() {
    check("table_plain.csv", &plain_table().to_csv());
    check("table_edge_cases.csv", &edge_case_table().to_csv());
}

#[test]
fn golden_table_json() {
    check("table_plain.json", &plain_table().to_json());
    check("table_edge_cases.json", &edge_case_table().to_json());
    check(
        "tables_array.json",
        &tables_to_json(&[plain_table(), edge_case_table()]),
    );
}

#[test]
fn golden_table_text() {
    check("table_plain.txt", &plain_table().to_text());
}

#[test]
fn golden_dataset_csv() {
    let d = sample_dataset();
    let path = std::env::temp_dir().join("armdse_golden_dataset.csv");
    d.save_csv(&path).unwrap();
    let body = fs::read_to_string(&path).unwrap();
    fs::remove_file(&path).ok();
    check("dataset.csv", &body);
    // And the golden bytes round-trip through the loader.
    let back = DseDataset::load_csv(&golden_path("dataset.csv")).unwrap();
    assert_eq!(back.rows, d.rows);
}

// ---------------------------------------------------------------------
// Conformance checks independent of the snapshots: the emitted bytes must
// *parse* under the grammars the formats claim (RFC 4180 / RFC 8259).
// ---------------------------------------------------------------------

/// Minimal strict RFC 4180 parser (with the common LF-only relaxation):
/// returns records of unquoted cells, or an error.
fn parse_csv(s: &str) -> Result<Vec<Vec<String>>, String> {
    let mut records = Vec::new();
    let mut record = Vec::new();
    let mut cell = String::new();
    let mut chars = s.chars().peekable();
    let mut in_quotes = false;
    let mut quoted_cell = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cell.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                c => cell.push(c),
            }
            continue;
        }
        match c {
            '"' if cell.is_empty() && !quoted_cell => {
                in_quotes = true;
                quoted_cell = true;
            }
            '"' => return Err("bare quote inside unquoted cell".into()),
            ',' => {
                record.push(std::mem::take(&mut cell));
                quoted_cell = false;
            }
            '\n' => {
                record.push(std::mem::take(&mut cell));
                records.push(std::mem::take(&mut record));
                quoted_cell = false;
            }
            '\r' if !quoted_cell => return Err("bare CR outside quotes".into()),
            c => cell.push(c),
        }
    }
    if in_quotes {
        return Err("unterminated quoted cell".into());
    }
    if !cell.is_empty() || !record.is_empty() {
        record.push(cell);
        records.push(record);
    }
    Ok(records)
}

#[test]
fn emitted_csv_parses_and_roundtrips_cells() {
    let t = edge_case_table();
    let parsed = parse_csv(&t.to_csv()).expect("emitted CSV must be RFC 4180 parseable");
    assert_eq!(parsed.len(), 1 + t.rows.len());
    assert_eq!(parsed[0], t.headers);
    for (got, want) in parsed[1..].iter().zip(&t.rows) {
        assert_eq!(got, want, "CSV quoting did not round-trip");
    }
}

/// Minimal RFC 8259 syntax validator: consumes one JSON value, returns
/// the rest of the input.
fn json_value(s: &str) -> Result<&str, String> {
    let s = s.trim_start();
    let mut chars = s.char_indices();
    match chars.next().map(|(_, c)| c) {
        Some('{') => json_seq(&s[1..], '}', |s| {
            let rest = json_string_lit(s)?;
            let rest = rest.trim_start();
            let rest = rest.strip_prefix(':').ok_or("expected ':'")?;
            json_value(rest)
        }),
        Some('[') => json_seq(&s[1..], ']', json_value),
        Some('"') => json_string_lit(s),
        Some('t') => s
            .strip_prefix("true")
            .ok_or_else(|| "bad literal".to_string()),
        Some('f') => s
            .strip_prefix("false")
            .ok_or_else(|| "bad literal".to_string()),
        Some('n') => s
            .strip_prefix("null")
            .ok_or_else(|| "bad literal".to_string()),
        Some(c) if c == '-' || c.is_ascii_digit() => {
            let end = s
                .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
                .unwrap_or(s.len());
            Ok(&s[end..])
        }
        _ => Err(format!("unexpected JSON start: {s:.20}")),
    }
}

fn json_seq<'a>(
    mut s: &'a str,
    close: char,
    item: impl Fn(&'a str) -> Result<&'a str, String>,
) -> Result<&'a str, String> {
    s = s.trim_start();
    if let Some(rest) = s.strip_prefix(close) {
        return Ok(rest);
    }
    loop {
        s = item(s)?.trim_start();
        if let Some(rest) = s.strip_prefix(',') {
            s = rest;
        } else {
            return s.strip_prefix(close).ok_or(format!("expected '{close}'"));
        }
    }
}

fn json_string_lit(s: &str) -> Result<&str, String> {
    let s = s.trim_start();
    let inner = s.strip_prefix('"').ok_or("expected string")?;
    let mut it = inner.char_indices();
    while let Some((i, c)) = it.next() {
        match c {
            '"' => return Ok(&inner[i + 1..]),
            '\\' => match it.next().map(|(_, e)| e) {
                Some('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') => {}
                Some('u') => {
                    for _ in 0..4 {
                        match it.next() {
                            Some((_, h)) if h.is_ascii_hexdigit() => {}
                            _ => return Err("bad \\u escape".into()),
                        }
                    }
                }
                _ => return Err("bad escape".into()),
            },
            c if (c as u32) < 0x20 => return Err("raw control char in string".into()),
            _ => {}
        }
    }
    Err("unterminated string".into())
}

#[test]
fn emitted_json_is_rfc8259_wellformed() {
    for body in [
        plain_table().to_json(),
        edge_case_table().to_json(),
        tables_to_json(&[plain_table(), edge_case_table()]),
    ] {
        let rest = json_value(&body).unwrap_or_else(|e| panic!("invalid JSON ({e}): {body}"));
        assert!(
            rest.trim().is_empty(),
            "trailing garbage after JSON value: {rest:?}"
        );
    }
}
