//! Sampled-tier fidelity bounds: the SimPoint-style warmup + measured
//! interval + extrapolation backend trades cycle accuracy for speed, but
//! the trade must stay *pinned*. These tests measure the relative cycle
//! error of `Sampled` against the exact backend over a paper-shaped grid
//! (the four kernels at Small scale, on the ThunderX2 baseline and on
//! seeded Table II design points) and assert it never exceeds the stated
//! tolerance — while everything architectural (retired ops, observed op
//! summary, validation verdict) must stay exactly equal, because
//! sampling only estimates *timing*, never *what executed*.

use armdse::core::space::ParamSpace;
use armdse::core::Engine;
use armdse::kernels::{App, WorkloadScale};
use armdse::simcore::{Idealized, Sampled, SimBackend, DEFAULT_INTERVAL_LEN, DEFAULT_WARMUP};

/// Maximum relative cycle error of the Sampled tier on the grid below.
/// Measured headroom: with the default warmup (one full interval, so the
/// measured window sits past every kernel's cold-start transient) the
/// worst observed error across the 20-point grid is ~0.035; shrinking
/// the warmup to 1024 balloons TeaLeaf points past 0.7, which is what
/// motivated the default. The bound is the screening contract the
/// explorer relies on — Sampled ranks candidates, it does not report
/// publishable cycles.
const MAX_REL_CYCLE_ERROR: f64 = 0.10;

fn rel_err(estimate: u64, exact: u64) -> f64 {
    (estimate as f64 - exact as f64).abs() / exact as f64
}

/// Cycle estimates stay within tolerance and architectural results are
/// exact, across apps × {baseline, 4 seeded design points}.
#[test]
fn sampled_error_bounded_and_architecturally_exact_on_paper_grid() {
    let engine = Engine::idealized();
    let space = ParamSpace::paper();
    let scale = WorkloadScale::Small;
    let sampled = Sampled::with_params(Idealized, DEFAULT_INTERVAL_LEN, DEFAULT_WARMUP);
    let baseline = armdse::core::DesignConfig::thunderx2();
    let mut worst: (f64, String) = (0.0, String::new());
    for app in App::ALL {
        let mut points = vec![("baseline".to_string(), baseline)];
        for i in 0..4u64 {
            points.push((format!("seed{i}"), space.sample_seeded(0x000F_1DE1 + i)));
        }
        for (tag, cfg) in &points {
            let w = engine.workload(app, scale, cfg.core.vector_length);
            let exact = Idealized.run(&w.program, &cfg.core, &cfg.mem);
            let est = sampled.run(&w.program, &cfg.core, &cfg.mem);
            let err = rel_err(est.cycles, exact.cycles);
            if err > worst.0 {
                worst = (err, format!("{app:?}/{tag}"));
            }
            assert!(
                err <= MAX_REL_CYCLE_ERROR,
                "{app:?}/{tag}: sampled {} vs exact {} cycles (rel err {err:.3} > {MAX_REL_CYCLE_ERROR})",
                est.cycles,
                exact.cycles
            );
            // Architectural quantities must be exact, not estimated.
            assert_eq!(est.retired, exact.retired, "{app:?}/{tag}: retired");
            assert_eq!(est.observed, exact.observed, "{app:?}/{tag}: op summary");
            assert_eq!(est.validated, exact.validated, "{app:?}/{tag}: validation");
            assert!(!est.hit_cycle_limit, "{app:?}/{tag}: wedged");
        }
    }
    eprintln!("worst sampled error on grid: {:.3} at {}", worst.0, worst.1);
}

/// When the warmup alone covers the whole dynamic stream, sampling
/// degenerates to exact simulation — zero error by construction.
#[test]
fn sampled_is_exact_when_warmup_covers_the_program() {
    let engine = Engine::idealized();
    let cfg = armdse::core::DesignConfig::thunderx2();
    for app in App::ALL {
        let w = engine.workload(app, WorkloadScale::Tiny, cfg.core.vector_length);
        let exact = Idealized.run(&w.program, &cfg.core, &cfg.mem);
        let oversized = Sampled::with_params(Idealized, 64, exact.retired + 1);
        let est = oversized.run(&w.program, &cfg.core, &cfg.mem);
        assert_eq!(est, exact, "{app:?}: oversized warmup must be exact");
    }
}

/// The engine-level Sampled tier rides the same bound: `Engine::sampled`
/// cycles on the baseline stay within tolerance of `Engine::idealized`.
#[test]
fn sampled_engine_tracks_exact_engine_within_tolerance() {
    let exact_engine = Engine::idealized();
    let sampled_engine = Engine::sampled(DEFAULT_INTERVAL_LEN, DEFAULT_WARMUP);
    let cfg = armdse::core::DesignConfig::thunderx2();
    let scale = WorkloadScale::Small;
    for app in App::ALL {
        let exact = exact_engine.simulate_config(app, scale, &cfg);
        let est = sampled_engine.simulate_config(app, scale, &cfg);
        let err = rel_err(est.cycles, exact.cycles);
        assert!(
            err <= MAX_REL_CYCLE_ERROR,
            "{app:?}: engine-level sampled error {err:.3}"
        );
        assert_eq!(est.retired, exact.retired);
        assert_eq!(est.observed, exact.observed);
    }
}
